"""Tests for the sampled census engine and its pipeline threading.

Covers the estimator's statistical contract (unbiasedness, convergence
with budget, CI coverage across randomized seeds), the determinism
contract (fixed seed ⇒ bit-identical estimates at any worker count and
any partition count), the cache-key separation between sampled and
exact artifacts, and the cross-cap regression for exact censuses cached
without a ``max_subgraphs`` cap.
"""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.core.cache import CensusCache, census_config_key
from repro.core.census import CensusConfig, census_total, subgraph_census
from repro.core.features import SubgraphFeatureExtractor
from repro.core.sampled import (
    SampledCensus,
    SampledCensusConfig,
    SampledCensusReport,
    run_sampled_census,
    sampled_config_key,
)
from repro.dist import subgraph_census_sharded
from repro.exceptions import CensusError, FeatureError
from repro.runtime import EXACT_ENGINES, VALID_ENGINES, RunContext


@pytest.fixture
def config() -> CensusConfig:
    return CensusConfig(max_edges=3)


# ---------------------------------------------------------------------------
# Statistical contract
# ---------------------------------------------------------------------------
class TestEstimatorStatistics:
    def test_estimates_converge_to_exact_counts(
        self, publication_graph, config
    ):
        """With a generous budget every pattern estimate is near exact."""
        exact = subgraph_census(publication_graph, 0, config, engine="fast")
        sampled = subgraph_census(
            publication_graph,
            0,
            config,
            engine="sampled",
            sampled=SampledCensusConfig(budget=20_000, seed=3),
        )
        assert set(sampled) == set(exact)
        for key, true_count in exact.items():
            assert sampled[key] == pytest.approx(true_count, rel=0.15)
        assert census_total(sampled) == pytest.approx(
            census_total(exact), rel=0.05
        )

    def test_total_estimate_is_unbiased(self, dense_two_label_graph, config):
        """The mean over many independent seeds matches the exact total.

        K4 exercises the exclusion-discipline replay: without banning the
        skipped siblings at every probe choice, overlapping subgraphs are
        over-counted and this mean drifts high.
        """
        exact_total = census_total(
            subgraph_census(dense_two_label_graph, 0, config, engine="fast")
        )
        seeds = 300
        mean = (
            sum(
                census_total(
                    subgraph_census(
                        dense_two_label_graph,
                        0,
                        config,
                        engine="sampled",
                        sampled=SampledCensusConfig(budget=64, seed=seed),
                    )
                )
                for seed in range(seeds)
            )
            / seeds
        )
        assert mean == pytest.approx(exact_total, rel=0.05)

    def test_ci_coverage_meets_contract(self, dense_two_label_graph, config):
        """``estimate ± half_width`` covers the truth at the promised rate.

        The empirical coverage over randomized seeds must reach the
        configured confidence minus three binomial standard errors —
        a deterministic bound that fails with probability ~1e-3 if the
        intervals are honest, and reliably if they are too narrow.
        """
        exact_total = census_total(
            subgraph_census(dense_two_label_graph, 0, config, engine="fast")
        )
        confidence = 0.95
        seeds = 120
        hits = 0
        for seed in range(seeds):
            est = subgraph_census(
                dense_two_label_graph,
                0,
                config,
                engine="sampled",
                sampled=SampledCensusConfig(
                    budget=128, seed=seed, confidence=confidence
                ),
            )
            if abs(census_total(est) - exact_total) <= est.report.half_width:
                hits += 1
        floor = confidence - 3 * (confidence * (1 - confidence) / seeds) ** 0.5
        assert hits / seeds >= floor

    def test_trivial_subgraph_counted_exactly(self, publication_graph, config):
        """The root-only pattern is deterministic, so it is never estimated."""
        from tests.conftest import brute_force_census

        with_trivial = brute_force_census(
            publication_graph, 0, config.max_edges, include_trivial=True
        )
        without = brute_force_census(
            publication_graph, 0, config.max_edges, include_trivial=False
        )
        (trivial_key,) = set(with_trivial) - set(without)
        trivial_config = CensusConfig(max_edges=3, include_trivial=True)
        sampled = subgraph_census(
            publication_graph,
            0,
            trivial_config,
            engine="sampled",
            sampled=SampledCensusConfig(budget=16, seed=0),
        )
        assert sampled[trivial_key] == 1.0
        # And it stays excluded under the default config, like the exact
        # engines.
        default = subgraph_census(
            publication_graph,
            0,
            config,
            engine="sampled",
            sampled=SampledCensusConfig(budget=16, seed=0),
        )
        assert trivial_key not in default

    def test_early_stop_with_rel_err_target(self, publication_graph, config):
        generous = SampledCensusConfig(budget=50_000, seed=0, rel_err=0.2)
        est = run_sampled_census(publication_graph, 0, config, generous)
        assert est.report.early_stopped
        assert est.report.draws < generous.budget
        assert (
            est.report.half_width
            <= generous.rel_err * est.report.total_estimate
        )

    def test_report_fields(self, publication_graph, config):
        cfg = SampledCensusConfig(budget=100, seed=5)
        est = run_sampled_census(publication_graph, 2, config, cfg)
        report = est.report
        assert isinstance(report, SampledCensusReport)
        assert report.root == 2
        assert report.draws == 100
        assert report.budget == 100
        assert report.total_estimate == pytest.approx(census_total(est))
        assert report.half_width >= 0.0
        assert report.confidence == cfg.confidence
        assert not report.early_stopped


# ---------------------------------------------------------------------------
# Determinism contract
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_fixed_seed_is_reproducible(self, publication_graph, config):
        cfg = SampledCensusConfig(budget=200, seed=11)
        first = subgraph_census(
            publication_graph, 1, config, engine="sampled", sampled=cfg
        )
        second = subgraph_census(
            publication_graph, 1, config, engine="sampled", sampled=cfg
        )
        assert first == second
        assert first.report == second.report

    def test_seed_and_budget_change_the_estimate(
        self, dense_two_label_graph, config
    ):
        base = subgraph_census(
            dense_two_label_graph,
            0,
            config,
            engine="sampled",
            sampled=SampledCensusConfig(budget=50, seed=0),
        )
        other_seed = subgraph_census(
            dense_two_label_graph,
            0,
            config,
            engine="sampled",
            sampled=SampledCensusConfig(budget=50, seed=1),
        )
        assert base != other_seed

    def test_extractor_bit_identical_across_n_jobs(
        self, publication_graph, config
    ):
        nodes = list(range(publication_graph.num_nodes))
        results = {}
        for n_jobs in (1, 2):
            extractor = SubgraphFeatureExtractor(
                config,
                sampled=SampledCensusConfig(budget=150, seed=4),
                ctx=RunContext(engine="sampled", n_jobs=n_jobs),
            )
            results[n_jobs] = extractor.census_many(publication_graph, nodes)
        assert results[1] == results[2]
        for a, b in zip(results[1], results[2]):
            assert a.report == b.report

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_sharded_bit_identical_at_any_partition_count(
        self, publication_graph, config, k
    ):
        cfg = SampledCensusConfig(budget=150, seed=4)
        nodes = list(range(publication_graph.num_nodes))
        direct = [
            subgraph_census(
                publication_graph,
                node,
                config,
                engine="sampled",
                sampled=cfg,
                sample_root_key=node,
            )
            for node in nodes
        ]
        sharded = subgraph_census_sharded(
            publication_graph,
            nodes,
            config,
            partitions=k,
            engine="sampled",
            sampled=cfg,
        )
        assert sharded == direct
        for a, b in zip(sharded, direct):
            assert a.report == b.report

    def test_duplicate_roots_fan_out_with_reports(
        self, publication_graph, config
    ):
        extractor = SubgraphFeatureExtractor(
            config,
            sampled=SampledCensusConfig(budget=60, seed=0),
            ctx=RunContext(engine="sampled"),
        )
        first, second = extractor.census_many(publication_graph, [3, 3])
        assert first == second
        assert first is not second
        assert second.report == first.report


# ---------------------------------------------------------------------------
# Cache keying
# ---------------------------------------------------------------------------
class TestCacheKeys:
    def test_sampled_and_exact_keys_never_collide(self, config):
        sampled = SampledCensusConfig(budget=100, seed=0)
        assert census_config_key(config) != census_config_key(config, sampled)

    def test_exact_keys_unchanged_by_the_sampled_suffix(self, config):
        """``sampled=None`` must keep historical store keys byte-identical."""
        key = census_config_key(config)
        assert "sampled" not in key

    def test_sampled_key_varies_with_each_knob(self, config):
        base = SampledCensusConfig(budget=100, seed=0)
        variants = [
            SampledCensusConfig(budget=200, seed=0),
            SampledCensusConfig(budget=100, seed=1),
            SampledCensusConfig(budget=100, seed=0, rel_err=0.1),
            SampledCensusConfig(budget=100, seed=0, confidence=0.99),
            SampledCensusConfig(budget=100, seed=0, min_draws=8),
        ]
        keys = {sampled_config_key(v) for v in variants}
        keys.add(sampled_config_key(base))
        assert len(keys) == len(variants) + 1

    def test_cache_roundtrips_sampled_census_with_report(
        self, publication_graph, config
    ):
        sampled = SampledCensusConfig(budget=80, seed=2)
        census = subgraph_census(
            publication_graph, 0, config, engine="sampled", sampled=sampled
        )
        cache = CensusCache()
        cache.put(publication_graph, config, 0, census, sampled)
        # The exact slot for the same (graph, config, root) stays empty.
        assert cache.get(publication_graph, config, 0) is None
        hit = cache.get(publication_graph, config, 0, sampled)
        assert hit == census
        assert hit.report == census.report

    def test_extractor_store_separates_sampled_from_exact(
        self, publication_graph, config
    ):
        from repro.runtime import ArtifactStore

        store = ArtifactStore()
        exact_extractor = SubgraphFeatureExtractor(
            config, ctx=RunContext(engine="fast", store=store)
        )
        exact = exact_extractor.census_many(publication_graph, [0])[0]
        sampled_extractor = SubgraphFeatureExtractor(
            config,
            sampled=SampledCensusConfig(budget=40, seed=0),
            ctx=RunContext(engine="sampled", store=store),
        )
        estimate = sampled_extractor.census_many(publication_graph, [0])[0]
        assert isinstance(estimate, SampledCensus)
        assert estimate != exact
        # Warm reruns hit their own artifacts bit-identically.
        assert exact_extractor.census_many(publication_graph, [0])[0] == exact
        rerun = sampled_extractor.census_many(publication_graph, [0])[0]
        assert rerun == estimate
        assert rerun.report == estimate.report


class TestCrossCapCache:
    """An uncapped exact artifact must honour a later call's cap."""

    def test_uncapped_hit_served_when_under_cap(
        self, publication_graph, config
    ):
        cache = CensusCache()
        census = subgraph_census(publication_graph, 0, config)
        cache.put(publication_graph, config, 0, census)
        total = census_total(census)
        capped = CensusConfig(max_edges=3, max_subgraphs=total)
        assert cache.get(publication_graph, capped, 0) == census

    def test_uncapped_hit_raises_when_over_cap(
        self, publication_graph, config
    ):
        cache = CensusCache()
        census = subgraph_census(publication_graph, 0, config)
        cache.put(publication_graph, config, 0, census)
        cap = census_total(census) - 1
        capped = CensusConfig(max_edges=3, max_subgraphs=cap)
        with pytest.raises(CensusError, match="max_subgraphs"):
            cache.get(publication_graph, capped, 0)

    def test_cap_matches_live_behaviour(self, publication_graph, config):
        """The cache raises exactly when an uncached call would have."""
        census = subgraph_census(publication_graph, 0, config)
        cap = census_total(census) - 1
        capped = CensusConfig(max_edges=3, max_subgraphs=cap)
        with pytest.raises(CensusError, match="max_subgraphs"):
            subgraph_census(publication_graph, 0, capped)

    def test_max_subgraphs_ignored_by_sampled_engine(
        self, publication_graph
    ):
        capped = CensusConfig(max_edges=3, max_subgraphs=1)
        est = subgraph_census(
            publication_graph,
            0,
            capped,
            engine="sampled",
            sampled=SampledCensusConfig(budget=50, seed=0),
        )
        assert census_total(est) > 1


# ---------------------------------------------------------------------------
# Validation and plumbing
# ---------------------------------------------------------------------------
class TestValidation:
    def test_invalid_engine_error_names_all_engines(
        self, publication_graph, config
    ):
        with pytest.raises(CensusError) as excinfo:
            subgraph_census(publication_graph, 0, config, engine="bogus")
        message = str(excinfo.value)
        for engine in VALID_ENGINES:
            assert engine in message

    def test_sampled_config_rejected_by_exact_engines(
        self, publication_graph, config
    ):
        for engine in EXACT_ENGINES:
            with pytest.raises(CensusError, match="sampled"):
                subgraph_census(
                    publication_graph,
                    0,
                    config,
                    engine=engine,
                    sampled=SampledCensusConfig(),
                )

    def test_extractor_rejects_sampled_with_exact_engine(self, config):
        with pytest.raises(FeatureError, match="sampled"):
            SubgraphFeatureExtractor(
                config,
                sampled=SampledCensusConfig(),
                ctx=RunContext(engine="fast"),
            )

    def test_extractor_defaults_sampled_config(self, config):
        extractor = SubgraphFeatureExtractor(
            config, ctx=RunContext(engine="sampled")
        )
        assert extractor.sampled == SampledCensusConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"budget": 0},
            {"rel_err": 0.0},
            {"rel_err": -1.0},
            {"confidence": 1.0},
            {"confidence": 0.0},
            {"min_draws": 1},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(CensusError):
            SampledCensusConfig(**kwargs)

    def test_telemetry_counters_recorded(self, publication_graph, config):
        from repro.obs import fresh_telemetry

        with fresh_telemetry() as telemetry:
            subgraph_census(
                publication_graph,
                0,
                config,
                engine="sampled",
                sampled=SampledCensusConfig(budget=40, seed=0),
            )
            snapshot = telemetry.snapshot()
        counters = snapshot["counters"]
        assert counters["census/sampled_roots"] == 1
        assert counters["census/sampled_draws"] == 40


class TestSampledCensusContainer:
    def test_copy_preserves_report(self, publication_graph, config):
        est = run_sampled_census(
            publication_graph, 0, config, SampledCensusConfig(budget=30)
        )
        for clone in (est.copy(), copy.copy(est), copy.deepcopy(est)):
            assert isinstance(clone, SampledCensus)
            assert clone == est
            assert clone.report == est.report

    def test_pickle_roundtrip_preserves_report(
        self, publication_graph, config
    ):
        est = run_sampled_census(
            publication_graph, 0, config, SampledCensusConfig(budget=30)
        )
        clone = pickle.loads(pickle.dumps(est))
        assert isinstance(clone, SampledCensus)
        assert clone == est
        assert clone.report == est.report
