"""Unit tests for label connectivity graphs (Figure 1A / Figure 2)."""

import numpy as np

from repro.core.connectivity import label_connectivity
from repro.core.graph import HeteroGraph


class TestLabelConnectivity:
    def test_counts_symmetric(self, publication_graph):
        lc = label_connectivity(publication_graph)
        assert np.array_equal(lc.edge_counts, lc.edge_counts.T)

    def test_publication_counts(self, publication_graph):
        lc = label_connectivity(publication_graph)
        ls = publication_graph.labelset
        i, a, p = ls.index("I"), ls.index("A"), ls.index("P")
        assert lc.edge_counts[i, a] == 3
        assert lc.edge_counts[a, p] == 4
        assert lc.edge_counts[p, p] == 1  # the citation edge
        assert lc.edge_counts[i, p] == 0

    def test_loop_detection(self, publication_graph, triangle_graph):
        assert label_connectivity(publication_graph).has_loops  # P-P citation
        assert not label_connectivity(triangle_graph).has_loops

    def test_collision_free_emax_bounds(self, publication_graph, triangle_graph):
        """The Section 3.1 bounds: 4 with label loops, 5 without."""
        assert label_connectivity(publication_graph).collision_free_emax() == 4
        assert label_connectivity(triangle_graph).collision_free_emax() == 5

    def test_label_pairs_sorted_and_counted(self, publication_graph):
        lc = label_connectivity(publication_graph)
        pairs = {(a, b): c for a, b, c in lc.label_pairs()}
        assert pairs[("I", "A")] == 3
        assert pairs[("P", "P")] == 1
        total = sum(pairs.values())
        assert total == publication_graph.num_edges

    def test_empty_graph(self):
        g = HeteroGraph.from_edges({"a": "A", "b": "B"}, [])
        lc = label_connectivity(g)
        assert not lc.has_loops
        assert lc.label_pairs() == []

    def test_render_mentions_loop(self, publication_graph):
        text = label_connectivity(publication_graph).render()
        assert "(loop)" in text
        assert "I -- A" in text

    def test_to_networkx(self, publication_graph):
        nxg = label_connectivity(publication_graph).to_networkx()
        assert set(nxg.nodes) == {"I", "A", "P"}
        assert nxg.has_edge("P", "P")
        assert nxg.edges["I", "A"]["count"] == 3
