"""Tests for the rank-prediction pipeline (Figure 3 / Table 1)."""

import numpy as np
import pytest

from repro.datasets import MagConfig, SyntheticMAG
from repro.experiments.common import EmbeddingParams
from repro.experiments.rank_prediction import (
    RankPredictionExperiment,
    RankTaskConfig,
)


@pytest.fixture(scope="module")
def experiment():
    mag = SyntheticMAG(
        MagConfig(
            num_institutions=12,
            authors_per_institution=3,
            papers_per_conference_year=15,
            conferences=("KDD",),
            years=tuple(range(2011, 2016)),
            seed=5,
        )
    )
    config = RankTaskConfig(
        train_years=(2013, 2014),
        test_year=2015,
        emax=3,
        forest_trees=20,
        select_large=20,
        embedding_params=EmbeddingParams(
            dim=16, num_walks=3, walk_length=10, window=4, line_samples=5_000
        ),
        seed=0,
    )
    return RankPredictionExperiment(mag, config)


@pytest.fixture(scope="module")
def small_result(experiment):
    return experiment.run(
        families=("classic", "subgraph", "combined", "line"),
        regressors=("LinRegr", "RanForest", "BayRidge"),
    )


class TestFeatureFamilies:
    def test_classic_matrices_aligned(self, experiment):
        by_year = experiment.feature_family("KDD", "classic")
        assert set(by_year) == {2013, 2014, 2015}
        widths = {matrix.shape for matrix in by_year.values()}
        assert len(widths) == 1
        assert next(iter(widths))[0] == 12

    def test_subgraph_train_test_same_width(self, experiment):
        by_year = experiment.feature_family("KDD", "subgraph")
        widths = {matrix.shape[1] for matrix in by_year.values()}
        assert len(widths) == 1
        assert next(iter(widths)) > 5

    def test_combined_width_is_sum(self, experiment):
        classic = experiment.feature_family("KDD", "classic")
        subgraph = experiment.feature_family("KDD", "subgraph")
        combined = experiment.feature_family("KDD", "combined")
        assert (
            combined[2015].shape[1]
            == classic[2015].shape[1] + subgraph[2015].shape[1]
        )

    def test_embedding_family_shape(self, experiment):
        by_year = experiment.feature_family("KDD", "line")
        assert by_year[2015].shape == (12, 16)

    def test_unknown_family_raises(self, experiment):
        with pytest.raises(ValueError):
            experiment.feature_family("KDD", "nonsense")

    def test_unknown_regressor_raises(self, experiment):
        with pytest.raises(ValueError):
            experiment._fit_predict("SVM", np.ones((4, 2)), np.ones(4), np.ones((2, 2)))


class TestResults:
    def test_grid_complete(self, small_result):
        assert len(small_result.ndcg) == 4 * 3  # families x regressors, 1 conf

    def test_scores_in_unit_interval(self, small_result):
        for score in small_result.ndcg.values():
            assert 0.0 <= score <= 1.0

    def test_average_table(self, small_result):
        table = small_result.average_table()
        assert ("RanForest", "subgraph") in table
        assert table[("RanForest", "subgraph")] == small_result.average(
            "RanForest", "subgraph"
        )

    def test_average_unknown_raises(self, small_result):
        with pytest.raises(KeyError):
            small_result.average("RanForest", "nope")

    def test_conferences_listed(self, small_result):
        assert small_result.conferences() == ["KDD"]

    def test_feature_timings_recorded(self, small_result):
        assert any(key.startswith("features/subgraph") for key in small_result.timings)

    def test_informative_features_beat_noise(self, small_result):
        """Classic and subgraph features must beat the weakest embedding for
        the strong regressors on this planted-signal world."""
        informative = min(
            small_result.average("RanForest", "classic"),
            small_result.average("RanForest", "subgraph"),
        )
        assert informative > 0.3


class TestImportancePath:
    def test_forest_and_space_returned(self, experiment):
        model, space = experiment.fit_forest_on_family("KDD", "subgraph")
        assert model.feature_importances_.shape[0] == len(space)
        assert len(space) > 0

    def test_non_subgraph_family_has_no_space(self, experiment):
        model, space = experiment.fit_forest_on_family("KDD", "classic")
        assert space is None
        assert model.feature_importances_ is not None


class TestSparseAndParallelParity:
    """The sparse layout, feature reuse, the batched forest engine and the
    process grid fan-out must all reproduce the sequential dense scores."""

    @pytest.fixture(scope="class")
    def two_conference_world(self):
        return SyntheticMAG(
            MagConfig(
                num_institutions=10,
                authors_per_institution=3,
                papers_per_conference_year=12,
                conferences=("KDD", "ICML"),
                years=tuple(range(2012, 2016)),
                seed=5,
            )
        )

    def _run(self, mag, **overrides):
        config = RankTaskConfig(
            train_years=(2013, 2014),
            test_year=2015,
            emax=2,
            forest_trees=10,
            seed=0,
            **overrides,
        )
        return RankPredictionExperiment(mag, config).run(
            families=("classic", "subgraph", "combined"),
            regressors=("LinRegr", "RanForest"),
        )

    def test_sparse_layout_scores_identical(self, two_conference_world):
        dense = self._run(two_conference_world, layout="dense")
        sparse = self._run(two_conference_world, layout="sparse")
        assert sparse.ndcg == dense.ndcg

    def test_no_reuse_scores_identical(self, two_conference_world):
        reused = self._run(two_conference_world, reuse_features=True)
        rebuilt = self._run(two_conference_world, reuse_features=False)
        assert rebuilt.ndcg == reused.ndcg

    def test_parallel_grid_scores_and_order_identical(self, two_conference_world):
        serial = self._run(two_conference_world, n_jobs=1)
        parallel = self._run(two_conference_world, n_jobs=2)
        assert parallel.ndcg == serial.ndcg
        assert list(parallel.ndcg) == list(serial.ndcg)

    def test_forest_engines_scores_identical(self, two_conference_world):
        fast = self._run(two_conference_world, forest_engine="fast")
        reference = self._run(two_conference_world, forest_engine="reference")
        assert reference.ndcg == fast.ndcg

    def test_layout_validation(self, two_conference_world):
        with pytest.raises(ValueError):
            self._run(two_conference_world, layout="csc")
