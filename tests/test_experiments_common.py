"""Tests for shared experiment plumbing."""

import numpy as np
import pytest

from repro.datasets import LoadConfig, SyntheticLOAD
from repro.experiments.common import (
    EMBEDDING_METHODS,
    EmbeddingParams,
    embedding_matrix,
    percentile_degree,
)


@pytest.fixture(scope="module")
def tiny_graph():
    return SyntheticLOAD(
        LoadConfig(
            num_locations=30,
            num_organizations=20,
            num_actors=30,
            num_dates=15,
            mean_degree=6,
            seed=21,
        )
    ).graph


class TestEmbeddingParams:
    def test_paper_preset_matches_section_422(self):
        params = EmbeddingParams.paper()
        assert params.dim == 128
        assert params.num_walks == 10
        assert params.walk_length == 80
        assert params.window == 10
        assert params.negative == 5
        assert params.p == 1.0 and params.q == 1.0

    def test_fast_preset_is_smaller(self):
        fast, paper = EmbeddingParams.fast(), EmbeddingParams.paper()
        assert fast.dim < paper.dim
        assert fast.num_walks < paper.num_walks
        assert fast.walk_length < paper.walk_length


class TestEmbeddingMatrix:
    @pytest.fixture(scope="class")
    def params(self):
        return EmbeddingParams(
            dim=8, num_walks=2, walk_length=8, window=3, line_samples=2_000
        )

    def test_every_method_produces_rows(self, tiny_graph, params):
        for method in EMBEDDING_METHODS:
            matrix = embedding_matrix(tiny_graph, [0, 1, 2], method, params, seed=0)
            assert matrix.shape == (3, 8)
            assert np.all(np.isfinite(matrix))

    def test_methods_have_distinct_streams(self, tiny_graph, params):
        """node2vec with p=q=1 walks like DeepWalk but must not be
        bit-identical (per-method seed offsets)."""
        deepwalk = embedding_matrix(tiny_graph, [0, 1], "deepwalk", params, seed=0)
        node2vec = embedding_matrix(tiny_graph, [0, 1], "node2vec", params, seed=0)
        assert not np.array_equal(deepwalk, node2vec)

    def test_unknown_method_raises(self, tiny_graph, params):
        with pytest.raises(ValueError, match="unknown embedding"):
            embedding_matrix(tiny_graph, [0], "word2vec", params)

    def test_deterministic_per_method(self, tiny_graph, params):
        a = embedding_matrix(tiny_graph, [0], "line", params, seed=5)
        b = embedding_matrix(tiny_graph, [0], "line", params, seed=5)
        assert np.array_equal(a, b)


class TestPercentileDegree:
    def test_monotone_in_percentile(self, tiny_graph):
        p50 = percentile_degree(tiny_graph, 50)
        p90 = percentile_degree(tiny_graph, 90)
        assert p50 <= p90

    def test_hundred_is_none(self, tiny_graph):
        assert percentile_degree(tiny_graph, 100) is None
