"""Tests for the label-prediction pipeline (Figure 5, Table 2 inputs)."""

import numpy as np
import pytest

from repro.core.connectivity import label_connectivity
from repro.datasets import LoadConfig, SyntheticLOAD
from repro.experiments.common import EmbeddingParams
from repro.experiments.label_prediction import (
    LabelPredictionExperiment,
    LabelTaskConfig,
    UNLABELED,
    with_removed_labels,
)


@pytest.fixture(scope="module")
def load_graph():
    return SyntheticLOAD(
        LoadConfig(
            num_locations=50,
            num_organizations=40,
            num_actors=60,
            num_dates=25,
            mean_degree=8,
            seed=6,
        )
    ).graph


@pytest.fixture(scope="module")
def experiment(load_graph):
    config = LabelTaskConfig(
        per_label=12,
        emax=2,
        n_repeats=2,
        train_fractions=(0.5,),
        removal_fractions=(0.0, 0.5),
        embedding_params=EmbeddingParams(
            dim=16, num_walks=2, walk_length=10, window=3, line_samples=4_000
        ),
        logreg_grid=(1.0,),
        seed=0,
    )
    return LabelPredictionExperiment(load_graph, config)


class TestWithRemovedLabels:
    def test_zero_fraction_is_identity(self, load_graph):
        assert with_removed_labels(load_graph, 0.0) is load_graph

    def test_full_removal(self, load_graph):
        relabelled = with_removed_labels(load_graph, 1.0, rng=0)
        unlabeled_index = relabelled.labelset.index(UNLABELED)
        assert np.all(relabelled.labels == unlabeled_index)

    def test_partial_removal_fraction(self, load_graph):
        relabelled = with_removed_labels(load_graph, 0.4, rng=0)
        unlabeled_index = relabelled.labelset.index(UNLABELED)
        removed = np.sum(relabelled.labels == unlabeled_index)
        assert removed == round(0.4 * load_graph.num_nodes)

    def test_structure_preserved(self, load_graph):
        relabelled = with_removed_labels(load_graph, 0.3, rng=1)
        assert relabelled.num_nodes == load_graph.num_nodes
        assert relabelled.num_edges == load_graph.num_edges
        assert relabelled.node_ids == load_graph.node_ids

    def test_original_labels_extended_not_replaced(self, load_graph):
        relabelled = with_removed_labels(load_graph, 0.3, rng=1)
        assert relabelled.labelset.names[:-1] == load_graph.labelset.names

    def test_bad_fraction(self, load_graph):
        with pytest.raises(ValueError):
            with_removed_labels(load_graph, 1.5)


class TestExperiment:
    def test_sampling_balanced(self, experiment):
        counts = np.bincount(experiment.targets)
        assert np.all(counts == 12)

    def test_subgraph_matrix_shape(self, experiment):
        X = experiment.subgraph_matrix()
        assert X.shape[0] == len(experiment.nodes)
        assert X.shape[1] > 0
        assert np.all(X >= 0)

    def test_embedding_cached(self, experiment):
        a = experiment.embedding_features("deepwalk")
        b = experiment.embedding_features("deepwalk")
        assert a is b

    def test_unknown_feature_raises(self, experiment):
        with pytest.raises(ValueError):
            experiment.feature_matrix("bogus")

    def test_training_sweep_structure(self, experiment):
        sweep = experiment.run_training_sweep(features=("subgraph", "deepwalk"))
        assert sweep.xs() == [0.5]
        assert set(sweep.features()) == {"subgraph", "deepwalk"}
        for feature in sweep.features():
            scores = sweep.scores[(feature, 0.5)]
            assert len(scores) == 2
            assert all(0.0 <= s <= 1.0 for s in scores)
        assert sweep.std("subgraph", 0.5) >= 0.0

    def test_label_removal_embeddings_flat(self, experiment):
        sweep = experiment.run_label_removal(features=("subgraph", "deepwalk"))
        flat_a = sweep.scores[("deepwalk", 0.0)]
        flat_b = sweep.scores[("deepwalk", 0.5)]
        assert flat_a == flat_b  # structure-only features ignore labels

    def test_label_removal_subgraph_varies(self, experiment):
        sweep = experiment.run_label_removal(features=("subgraph",))
        assert ("subgraph", 0.0) in sweep.scores
        assert ("subgraph", 0.5) in sweep.scores

    def test_dmax_sweep_returns_all_levels(self, experiment):
        result = experiment.run_dmax_sweep(percentiles=(90, 100))
        assert set(result) == {90.0, 100.0}
        assert all(0.0 <= v <= 1.0 for v in result.values())

    def test_empty_graph_rejected(self):
        from repro.core.graph import HeteroGraph

        graph = HeteroGraph.from_edges({"a": "A", "b": "B"}, [])
        with pytest.raises(ValueError):
            LabelPredictionExperiment(graph, LabelTaskConfig(per_label=5))


class TestSweepParallelParity:
    """Pre-drawn split seeds make the fan-out bit-identical to serial."""

    def _sweep(self, load_graph, **overrides):
        config = LabelTaskConfig(
            per_label=10,
            emax=2,
            n_repeats=2,
            train_fractions=(0.5, 0.9),
            embedding_params=EmbeddingParams(
                dim=8, num_walks=2, walk_length=8, window=3, line_samples=2_000
            ),
            seed=0,
            **overrides,
        )
        experiment = LabelPredictionExperiment(load_graph, config)
        return experiment.run_training_sweep(features=("subgraph", "deepwalk"))

    def test_parallel_sweep_scores_identical(self, load_graph):
        serial = self._sweep(load_graph, n_jobs=1)
        parallel = self._sweep(load_graph, n_jobs=2)
        assert parallel.scores == serial.scores
        assert list(parallel.scores) == list(serial.scores)

    def test_sparse_layout_scores_identical(self, load_graph):
        dense = self._sweep(load_graph, layout="dense")
        sparse = self._sweep(load_graph, layout="sparse")
        assert sparse.scores == dense.scores

    def test_layout_validation(self, load_graph):
        with pytest.raises(ValueError):
            LabelPredictionExperiment(
                load_graph, LabelTaskConfig(layout="csc")
            )
