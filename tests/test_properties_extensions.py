"""Property-based tests for the edge-typed extension and walk corpora."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import HeteroGraph
from repro.extensions.edge_typed import (
    EdgeTypedGraph,
    TypedEdge,
    encode_typed_subgraph,
    typed_subgraph_census,
)
from tests.test_extensions_edge_typed import brute_force_typed


@st.composite
def small_digraphs(draw, max_nodes=5):
    """Connected labelled digraphs as (node_labels, directed_edges)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    labels = {f"v{i}": draw(st.sampled_from("AB")) for i in range(n)}
    # Spanning tree for connectivity, random orientations.
    edges = []
    for j in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=j - 1))
        if draw(st.booleans()):
            edges.append((f"v{parent}", f"v{j}"))
        else:
            edges.append((f"v{j}", f"v{parent}"))
    pairs = [(i, j) for i in range(n) for j in range(n) if i < j]
    extras = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=3))
    present = {tuple(sorted((int(u[1:]), int(v[1:])))) for u, v in edges}
    for i, j in extras:
        if (i, j) not in present:
            present.add((i, j))
            if draw(st.booleans()):
                edges.append((f"v{i}", f"v{j}"))
            else:
                edges.append((f"v{j}", f"v{i}"))
    return labels, edges


class TestTypedCensusProperties:
    @given(small_digraphs())
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force(self, digraph):
        labels, edges = digraph
        graph = EdgeTypedGraph.from_directed(labels, edges)
        for root in range(graph.num_nodes):
            expected = brute_force_typed(graph, root, 3)
            assert typed_subgraph_census(graph, root, 3) == expected

    @given(small_digraphs())
    @settings(max_examples=50, deadline=None)
    def test_total_matches_undirected_census(self, digraph):
        """Directions refine classes but never change the subgraph count."""
        from repro.core.census import CensusConfig, census_total, subgraph_census

        labels, edges = digraph
        typed = EdgeTypedGraph.from_directed(labels, edges)
        shadow = HeteroGraph.from_edges(labels, edges)
        for root in range(typed.num_nodes):
            typed_counts = typed_subgraph_census(typed, root, 3)
            shadow_counts = subgraph_census(
                shadow, shadow.index(f"v{root}"), CensusConfig(max_edges=3)
            )
            assert sum(typed_counts.values()) == census_total(shadow_counts)
            assert len(typed_counts) >= len(shadow_counts)

    @given(small_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_reversing_all_edges_is_a_bijection_of_codes(self, digraph):
        """Reversing every edge maps the census to an equal-size census with
        identical counts (swap the out/in roles in each code)."""
        labels, edges = digraph
        forward = EdgeTypedGraph.from_directed(labels, edges)
        backward = EdgeTypedGraph.from_directed(
            labels, [(v, u) for u, v in edges]
        )
        for root in range(forward.num_nodes):
            f = typed_subgraph_census(forward, root, 3)
            b = typed_subgraph_census(backward, root, 3)
            assert sorted(f.values()) == sorted(b.values())


class TestWalkProperties:
    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_walks_on_cycles_never_stop_early(self, n, seed):
        from repro.embeddings.walks import uniform_random_walks

        labels = {f"v{i}": "X" for i in range(n)}
        edges = [(f"v{i}", f"v{(i + 1) % n}") for i in range(n)]
        graph = HeteroGraph.from_edges(labels, edges)
        walks = uniform_random_walks(graph, num_walks=1, walk_length=6, rng=seed)
        assert walks.shape == (n, 6)
        assert (walks >= 0).all()  # every node has degree 2: no -1 padding

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_alias_table_preserves_support(self, seed):
        from repro.embeddings.alias import AliasTable

        rng = np.random.default_rng(seed)
        weights = rng.random(6)
        weights[rng.integers(0, 6)] = 0.0
        if weights.sum() == 0:
            weights[0] = 1.0
        table = AliasTable(weights)
        draws = table.sample(np.random.default_rng(seed + 1), 2000)
        support = set(np.flatnonzero(weights > 0).tolist())
        assert set(draws.tolist()) <= support
