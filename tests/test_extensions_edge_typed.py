"""Tests for the edge-typed (directed / edge-heterogeneous) extension."""

from collections import Counter
from itertools import combinations

import pytest

from repro.exceptions import CensusError, EncodingError, GraphError
from repro.extensions.edge_typed import (
    EdgeTypedGraph,
    encode_typed_subgraph,
    typed_subgraph_census,
)


@pytest.fixture
def citation_digraph():
    """Small citation digraph: papers cite older papers."""
    return EdgeTypedGraph.from_directed(
        {"p1": "P", "p2": "P", "p3": "P", "a": "A"},
        [("p2", "p1"), ("p3", "p1"), ("p3", "p2"), ("a", "p3")],
    )


@pytest.fixture
def multiplex_graph():
    """Edge-heterogeneous graph with two relation types."""
    return EdgeTypedGraph.from_edge_labels(
        {"u": "U", "v": "U", "w": "U"},
        [("u", "v", "friend"), ("v", "w", "colleague"), ("u", "w", "friend")],
    )


class TestConstruction:
    def test_directed_roles(self, citation_digraph):
        g = citation_digraph
        assert set(g.roleset.names) == {"out", "in"}
        assert g.num_nodes == 4
        assert g.num_edges == 4

    def test_edge_labels_roles(self, multiplex_graph):
        assert set(multiplex_graph.roleset.names) == {"friend", "colleague"}

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            EdgeTypedGraph.from_directed({"a": "A"}, [("a", "a")])

    def test_duplicate_or_antiparallel_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            EdgeTypedGraph.from_directed(
                {"a": "A", "b": "B"}, [("a", "b"), ("b", "a")]
            )

    def test_unknown_node_rejected(self):
        with pytest.raises(GraphError):
            EdgeTypedGraph.from_directed({"a": "A"}, [("a", "ghost")])

    def test_incident_edges_cover_degree(self, citation_digraph):
        g = citation_digraph
        total = sum(g.degree(i) for i in range(g.num_nodes))
        assert total == 2 * g.num_edges


class TestTypedEncoding:
    def test_direction_distinguishes(self):
        """u->v and v->u produce different codes for same node labels."""
        forward = encode_typed_subgraph([0, 1], [(0, 1, 0, 1)], 2, 2)
        backward = encode_typed_subgraph([0, 1], [(0, 1, 1, 0)], 2, 2)
        assert forward != backward

    def test_symmetric_roles_reduce_to_undirected(self):
        """With one role the code carries exactly the undirected info."""
        from repro.core.encoding import encode_subgraph

        labels = [0, 1, 0]
        undirected = encode_subgraph(labels, [(0, 1), (1, 2)], 2)
        typed = encode_typed_subgraph(
            labels, [(0, 1, 0, 0), (1, 2, 0, 0)], 2, 1
        )
        assert [seq[0] for seq in typed] == [seq[0] for seq in undirected]
        assert [sum(seq[1:]) for seq in typed] == [sum(seq[1:]) for seq in undirected]

    def test_order_invariance(self):
        a = encode_typed_subgraph([0, 1, 2], [(0, 1, 0, 1), (1, 2, 1, 0)], 3, 2)
        b = encode_typed_subgraph([2, 1, 0], [(2, 1, 0, 1), (1, 0, 1, 0)], 3, 2)
        assert a == b

    def test_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            encode_typed_subgraph([0], [(0, 1, 0, 0)], 1, 1)
        with pytest.raises(EncodingError):
            encode_typed_subgraph([0, 0], [(0, 1, 5, 0)], 1, 1)

    def test_star_in_vs_out(self):
        """A node with 2 outgoing edges differs from one with 2 incoming."""
        out_star = encode_typed_subgraph(
            [0, 0, 0], [(0, 1, 0, 1), (0, 2, 0, 1)], 1, 2
        )
        in_star = encode_typed_subgraph(
            [0, 0, 0], [(0, 1, 1, 0), (0, 2, 1, 0)], 1, 2
        )
        assert out_star != in_star


def brute_force_typed(graph: EdgeTypedGraph, root: int, max_edges: int) -> Counter:
    """Exhaustive reference census over all connected typed edge subsets."""
    edges = graph.edges()
    counts: Counter = Counter()
    for size in range(1, max_edges + 1):
        for subset in combinations(edges, size):
            nodes = sorted({n for e in subset for n in (e.u, e.v)})
            if root not in nodes:
                continue
            adjacency = {n: set() for n in nodes}
            for e in subset:
                adjacency[e.u].add(e.v)
                adjacency[e.v].add(e.u)
            seen = {nodes[0]}
            stack = [nodes[0]]
            while stack:
                current = stack.pop()
                for neighbour in adjacency[current]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            if len(seen) != len(nodes):
                continue
            local = {n: i for i, n in enumerate(nodes)}
            code = encode_typed_subgraph(
                [graph.label_of(n) for n in nodes],
                [(local[e.u], local[e.v], e.role_u, e.role_v) for e in subset],
                len(graph.labelset),
                len(graph.roleset),
            )
            counts[code] += 1
    return counts


class TestTypedCensus:
    @pytest.mark.parametrize("max_edges", [1, 2, 3, 4])
    def test_matches_brute_force_digraph(self, citation_digraph, max_edges):
        for root in range(citation_digraph.num_nodes):
            expected = brute_force_typed(citation_digraph, root, max_edges)
            actual = typed_subgraph_census(citation_digraph, root, max_edges)
            assert actual == expected

    @pytest.mark.parametrize("max_edges", [1, 2, 3])
    def test_matches_brute_force_multiplex(self, multiplex_graph, max_edges):
        for root in range(multiplex_graph.num_nodes):
            expected = brute_force_typed(multiplex_graph, root, max_edges)
            actual = typed_subgraph_census(multiplex_graph, root, max_edges)
            assert actual == expected

    def test_direction_matters_in_census(self):
        """Two digraphs with the same undirected shadow but different
        directions yield different censuses."""
        chain_fwd = EdgeTypedGraph.from_directed(
            {"a": "X", "b": "X", "c": "X"}, [("a", "b"), ("b", "c")]
        )
        chain_mix = EdgeTypedGraph.from_directed(
            {"a": "X", "b": "X", "c": "X"}, [("a", "b"), ("c", "b")]
        )
        fwd = typed_subgraph_census(chain_fwd, 0, max_edges=2)
        mix = typed_subgraph_census(chain_mix, 0, max_edges=2)
        assert sum(fwd.values()) == sum(mix.values())
        assert fwd != mix

    def test_max_degree_heuristic(self, citation_digraph):
        full = typed_subgraph_census(citation_digraph, 3, max_edges=3)
        capped = typed_subgraph_census(
            citation_digraph, 3, max_edges=3, max_degree=1
        )
        assert sum(capped.values()) <= sum(full.values())

    def test_bad_root(self, citation_digraph):
        with pytest.raises(CensusError):
            typed_subgraph_census(citation_digraph, 99)

    def test_bad_max_edges(self, citation_digraph):
        with pytest.raises(CensusError):
            typed_subgraph_census(citation_digraph, 0, max_edges=0)


class TestMatrix:
    def test_aligned_matrix(self, citation_digraph):
        from repro.extensions.edge_typed import directed_census_matrix

        matrix, codes = directed_census_matrix(
            citation_digraph, [0, 1, 2], max_edges=2
        )
        assert matrix.shape == (3, len(codes))
        for row, root in enumerate([0, 1, 2]):
            census = typed_subgraph_census(citation_digraph, root, 2)
            assert matrix[row].sum() == sum(census.values())


class TestTypedMasking:
    def test_masked_roots_with_same_neighbourhood_agree(self):
        """Directed parity with Section 4.3.2: after masking, two roots of
        different labels but identical typed neighbourhoods share counts."""
        graph = EdgeTypedGraph.from_directed(
            {"x": "A", "y": "B", "t": "C"},
            [("x", "t"), ("y", "t")],
        )
        cx = typed_subgraph_census(graph, graph.index("x"), 1, mask_start_label=True)
        cy = typed_subgraph_census(graph, graph.index("y"), 1, mask_start_label=True)
        assert cx == cy

    def test_unmasked_roots_differ(self):
        graph = EdgeTypedGraph.from_directed(
            {"x": "A", "y": "B", "t": "C"},
            [("x", "t"), ("y", "t")],
        )
        cx = typed_subgraph_census(graph, graph.index("x"), 1)
        cy = typed_subgraph_census(graph, graph.index("y"), 1)
        assert cx != cy

    def test_masking_preserves_totals(self, citation_digraph):
        for root in range(citation_digraph.num_nodes):
            masked = typed_subgraph_census(
                citation_digraph, root, 3, mask_start_label=True
            )
            plain = typed_subgraph_census(citation_digraph, root, 3)
            assert sum(masked.values()) == sum(plain.values())
