"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.core import (
    CensusConfig,
    HeteroGraph,
    census_total,
    subgraph_census,
)
from repro.exceptions import CensusError


class TestCensusEdgeCases:
    def test_single_edge_graph(self):
        graph = HeteroGraph.from_edges({"a": "A", "b": "B"}, [("a", "b")])
        for root in (0, 1):
            counts = subgraph_census(graph, root, CensusConfig(max_edges=5))
            assert census_total(counts) == 1

    def test_mask_plus_hash_key(self, publication_graph):
        """Masking composes with the hash key mode."""
        masked = subgraph_census(
            publication_graph,
            0,
            CensusConfig(max_edges=2, mask_start_label=True, key="hash"),
        )
        unmasked = subgraph_census(
            publication_graph, 0, CensusConfig(max_edges=2, key="hash")
        )
        assert census_total(masked) == census_total(unmasked)
        assert masked != unmasked  # hash values differ under the mask label

    def test_mask_on_single_label_graph(self):
        graph = HeteroGraph.from_edges(
            {"a": "X", "b": "X", "c": "X"}, [("a", "b"), ("b", "c")]
        )
        counts = subgraph_census(
            graph, 0, CensusConfig(max_edges=2, mask_start_label=True)
        )
        # Codes are expressed over the extended (X, __mask__) alphabet.
        for code in counts:
            assert all(len(seq) == 3 for seq in code)

    def test_large_emax_on_tree_terminates(self):
        """e_max far above the subgraph count must not loop or overcount."""
        graph = HeteroGraph.from_edges(
            {"r": "A", "x": "B", "y": "B"}, [("r", "x"), ("r", "y")]
        )
        counts = subgraph_census(graph, 0, CensusConfig(max_edges=50))
        assert census_total(counts) == 3  # two edges + the pair

    def test_cycle_counted_once(self):
        """The full cycle is one subgraph regardless of traversal."""
        graph = HeteroGraph.from_edges(
            {"a": "X", "b": "X", "c": "X", "d": "X"},
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")],
        )
        counts = subgraph_census(graph, 0, CensusConfig(max_edges=4))
        cycle_codes = [
            code for code in counts
            if len(code) == 4 and all(sum(seq[1:]) == 2 for seq in code)
        ]
        assert len(cycle_codes) == 1
        assert counts[cycle_codes[0]] == 1

    def test_parallel_component_invisible(self):
        """Subgraphs never leak across connected components."""
        graph = HeteroGraph.from_edges(
            {"a": "A", "b": "B", "x": "A", "y": "B"},
            [("a", "b"), ("x", "y")],
        )
        counts = subgraph_census(graph, 0, CensusConfig(max_edges=5))
        assert census_total(counts) == 1

    def test_dmax_zero_blocks_everything_beyond_neighbours(self):
        graph = HeteroGraph.from_edges(
            {"r": "A", "m": "B", "far": "C"}, [("r", "m"), ("m", "far")]
        )
        counts = subgraph_census(
            graph, 0, CensusConfig(max_edges=3, max_degree=0)
        )
        # m has degree 2 > 0 -> not expanded; only the r-m edge is found.
        assert census_total(counts) == 1


class TestExperimentEdgeCases:
    def test_rank_dectree_path(self):
        """The DecTree regressor path (top-5 selection, no scaling)."""
        from repro.datasets import MagConfig, SyntheticMAG
        from repro.experiments import RankPredictionExperiment, RankTaskConfig

        mag = SyntheticMAG(
            MagConfig(
                num_institutions=8,
                authors_per_institution=2,
                papers_per_conference_year=10,
                conferences=("KDD",),
                years=(2013, 2014, 2015),
                seed=2,
            )
        )
        config = RankTaskConfig(
            train_years=(2014,), test_year=2015, emax=2, forest_trees=5, seed=0
        )
        experiment = RankPredictionExperiment(mag, config)
        result = experiment.run(families=("classic",), regressors=("DecTree",))
        assert 0.0 <= result.ndcg[("DecTree", "classic", "KDD")] <= 1.0

    def test_label_experiment_root_filter_disabled(self):
        from repro.datasets import LoadConfig, SyntheticLOAD
        from repro.experiments import LabelPredictionExperiment, LabelTaskConfig

        load = SyntheticLOAD(
            LoadConfig(
                num_locations=30,
                num_organizations=20,
                num_actors=30,
                num_dates=15,
                mean_degree=6,
                seed=22,
            )
        )
        with_filter = LabelPredictionExperiment(
            load.graph, LabelTaskConfig(per_label=10, seed=0)
        )
        without_filter = LabelPredictionExperiment(
            load.graph,
            LabelTaskConfig(per_label=10, seed=0, root_degree_percentile=None),
        )
        degrees = load.graph.degrees()
        assert degrees[with_filter.nodes].max() <= degrees[without_filter.nodes].max()


class TestRenderingEdgeCases:
    def test_render_table_handles_nan(self):
        from repro.experiments.reporting import render_table

        text = render_table("T", ["x"], [("row", [float("nan")])])
        assert "nan" in text

    def test_sweep_result_empty_query_raises(self):
        from repro.experiments.label_prediction import SweepResult

        sweep = SweepResult({})
        with pytest.raises(KeyError):
            sweep.mean("subgraph", 0.5)
