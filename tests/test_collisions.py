"""Collision analysis tests: reproduce the Section 3.1 / Figure 1C bounds."""

import pytest

from repro.core.collisions import find_collisions
from repro.core.isomorphism import are_isomorphic


class TestBounds:
    """The paper's e_max bounds, re-derived by exhaustive enumeration."""

    def test_no_collisions_up_to_4_edges_with_loops(self):
        report = find_collisions(2, 4, allow_same_label_edges=True)
        assert report.collisions == []
        assert report.collision_free_emax == 4

    def test_first_collision_at_5_edges_with_loops(self):
        report = find_collisions(2, 5, allow_same_label_edges=True, stop_at_first=True)
        assert report.first_collision_edges == 5
        assert report.collision_free_emax == 4

    def test_no_collisions_up_to_5_edges_without_loops(self):
        report = find_collisions(2, 5, allow_same_label_edges=False)
        assert report.collisions == []
        assert report.collision_free_emax == 5

    def test_first_collision_at_6_edges_without_loops(self):
        report = find_collisions(
            3, 6, allow_same_label_edges=False, stop_at_first=True
        )
        assert report.first_collision_edges == 6
        assert report.collision_free_emax == 5

    def test_single_label_collision_is_classic(self):
        """With one label the first collision also appears at 5 edges
        (Figure 1C left shows single-label colliding graphs)."""
        report = find_collisions(1, 5, stop_at_first=True)
        assert report.first_collision_edges == 5


class TestCollisionRecords:
    def test_collision_members_not_isomorphic_but_same_code(self):
        report = find_collisions(2, 5, allow_same_label_edges=True, stop_at_first=True)
        collision = report.collisions[0]
        assert not are_isomorphic(collision.first, collision.second)
        assert collision.first.encode(2) == collision.second.encode(2)
        assert collision.num_edges == 5

    def test_graphs_checked_positive(self):
        report = find_collisions(2, 3)
        assert report.graphs_checked > 10

    def test_summary_renders(self):
        report = find_collisions(2, 3)
        text = report.summary()
        assert "collision-free e_max" in text
        assert "classes" in text

    def test_first_collision_none_when_clean(self):
        report = find_collisions(2, 3)
        assert report.first_collision_edges is None
        assert report.collision_free_emax == 3

    def test_max_nodes_forwarded(self):
        small = find_collisions(1, 4, max_nodes=3)
        full = find_collisions(1, 4)
        assert small.graphs_checked < full.graphs_checked
