"""Repo-policy check: library diagnostics go through logging, not print.

Everything under ``src/repro/`` must use the ``repro.*`` logger hierarchy
(:mod:`repro.obs.log`) for diagnostics.  The only sanctioned ``print``
calls are the CLI's result/table rendering in ``cli.py`` — stdout is that
command's *output*, stderr its diagnostics.  The same split applies to the
``benchmarks/`` tree: ``test_*.py`` bodies print the paper-style tables
they regenerate (their product, under ``pytest -s``), but shared fixtures
and helpers (``conftest.py`` etc.) must stay silent.  This test is the CI
guard promised in docs/observability.md.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
BENCHMARKS = REPO / "benchmarks"

#: Files whose stdout IS their product: the CLI prints tables/results.
ALLOWED = {"cli.py"}

#: Benchmark helpers whose stdout IS their product: ``_bench.py`` renders
#: the cross-artefact trajectory table (``python -m benchmarks._bench
#: summary``).
BENCH_ALLOWED = {"_bench.py"}

#: A call to the ``print`` builtin: not preceded by an attribute access or
#: identifier character (so ``pprint(``, ``self.print(`` don't match).
BARE_PRINT = re.compile(r"(?<![\w.])print\(")


def _scan(path: Path, root: Path):
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.lstrip()
        if stripped.startswith("#"):
            continue
        if BARE_PRINT.search(line):
            yield f"{path.relative_to(root)}:{lineno}: {stripped}"


def iter_offenders():
    for path in sorted(SRC.rglob("*.py")):
        if path.name in ALLOWED:
            continue
        yield from _scan(path, SRC.parent)
    for path in sorted(BENCHMARKS.rglob("*.py")):
        if path.name.startswith("test_") or path.name in BENCH_ALLOWED:
            continue  # bench bodies and the summary CLI print their product
        yield from _scan(path, REPO)


def test_no_bare_print_outside_cli():
    offenders = list(iter_offenders())
    assert not offenders, (
        "bare print() in library code; use repro.obs.log.get_logger "
        "instead:\n" + "\n".join(offenders)
    )
