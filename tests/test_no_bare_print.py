"""Repo-policy check: library diagnostics go through logging, not print.

Everything under ``src/repro/`` must use the ``repro.*`` logger hierarchy
(:mod:`repro.obs.log`) for diagnostics.  The only sanctioned ``print``
calls are the CLI's result/table rendering in ``cli.py`` — stdout is that
command's *output*, stderr its diagnostics.  This test is the CI guard
promised in docs/observability.md.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Files whose stdout IS their product: the CLI prints tables/results.
ALLOWED = {"cli.py"}

#: A call to the ``print`` builtin: not preceded by an attribute access or
#: identifier character (so ``pprint(``, ``self.print(`` don't match).
BARE_PRINT = re.compile(r"(?<![\w.])print\(")


def iter_offenders():
    for path in sorted(SRC.rglob("*.py")):
        if path.name in ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            stripped = line.lstrip()
            if stripped.startswith("#"):
                continue
            if BARE_PRINT.search(line):
                yield f"{path.relative_to(SRC.parent)}:{lineno}: {stripped}"


def test_no_bare_print_outside_cli():
    offenders = list(iter_offenders())
    assert not offenders, (
        "bare print() in library code; use repro.obs.log.get_logger "
        "instead:\n" + "\n".join(offenders)
    )
