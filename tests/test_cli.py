"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import write_edgelist, write_graph_json


@pytest.fixture
def graph_json(publication_graph, tmp_path):
    target = tmp_path / "graph.json"
    write_graph_json(publication_graph, target)
    return str(target)


@pytest.fixture
def graph_hel(publication_graph, tmp_path):
    target = tmp_path / "graph.hel"
    write_edgelist(publication_graph, target)
    return str(target)


class TestInfo:
    def test_summarises(self, graph_json, capsys):
        assert main(["info", graph_json]) == 0
        out = capsys.readouterr().out
        assert "HeteroGraph" in out
        assert "I: 2 nodes" in out
        assert "degree" in out

    def test_edgelist_format(self, graph_hel, capsys):
        assert main(["info", graph_hel]) == 0
        assert "nodes=7" in capsys.readouterr().out

    def test_missing_file(self):
        with pytest.raises(SystemExit, match="no such file"):
            main(["info", "/nonexistent/graph.json"])


class TestConnectivity:
    def test_renders_pairs(self, graph_json, capsys):
        assert main(["connectivity", graph_json]) == 0
        out = capsys.readouterr().out
        assert "I -- A" in out
        assert "collision-free e_max: 4" in out  # P-P loop present


class TestCensus:
    def test_counts_printed(self, graph_json, capsys):
        assert main(["census", graph_json, "--root", "i1", "--emax", "2"]) == 0
        captured = capsys.readouterr()
        lines = [l for l in captured.out.strip().split("\n") if l]
        assert all("\t" in line for line in lines)
        assert "classes" in captured.err

    def test_describe_flag(self, graph_json, capsys):
        assert main(
            ["census", graph_json, "--root", "i1", "--emax", "2", "--describe"]
        ) == 0
        assert "nodes" in capsys.readouterr().out

    def test_mask_flag(self, graph_json, capsys):
        assert main(
            ["census", graph_json, "--root", "i1", "--emax", "1", "--mask"]
        ) == 0
        assert "__mask__" in capsys.readouterr().out

    def test_census_cache_file_roundtrip(self, graph_json, tmp_path, capsys):
        """--census-cache writes a cache file that serves the second run."""
        cache_path = tmp_path / "census.cache"
        args = [
            "census",
            graph_json,
            "--root",
            "i1",
            "--emax",
            "2",
            "--census-cache",
            str(cache_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr()
        assert cache_path.exists()
        assert "1 misses" in first.err

        assert main(args) == 0
        second = capsys.readouterr()
        assert "1 hits" in second.err
        assert first.out == second.out

    def test_n_jobs_flag_accepted(self, graph_json, capsys):
        assert main(
            ["census", graph_json, "--root", "i1", "--emax", "2", "--n-jobs", "2"]
        ) == 0
        assert "classes" in capsys.readouterr().err


class TestIngest:
    def test_builds_hmg_and_census_matches(self, graph_hel, tmp_path, capsys):
        hmg = tmp_path / "graph.hmg"
        assert main(["ingest", graph_hel, "--out", str(hmg)]) == 0
        out = capsys.readouterr().out
        assert "nodes: 7" in out
        assert "fingerprint: " in out
        assert hmg.exists()

        assert main(["census", str(hmg), "--root", "i1", "--emax", "2"]) == 0
        mmap_out = capsys.readouterr().out
        assert main(["census", graph_hel, "--root", "i1", "--emax", "2"]) == 0
        assert capsys.readouterr().out == mmap_out

    def test_default_out_swaps_suffix(self, graph_hel, capsys):
        assert main(["ingest", graph_hel]) == 0
        out = capsys.readouterr().out
        expected = graph_hel.removesuffix(".hel") + ".hmg"
        assert f"{expected}: " in out

    def test_chunk_edges_and_no_ids(self, graph_hel, tmp_path, capsys):
        hmg = tmp_path / "dense.hmg"
        assert main(
            ["ingest", graph_hel, "--out", str(hmg), "--chunk-edges", "2", "--no-ids"]
        ) == 0
        capsys.readouterr()
        from repro.core.mmap_graph import MmapGraph

        with MmapGraph(hmg) as graph:
            assert graph.node_id(0) == 0  # dense indices, no id table

    def test_bad_line_reports_line_number(self, tmp_path):
        bad = tmp_path / "bad.hel"
        bad.write_text("v a A\ne a ghost\n")
        with pytest.raises(SystemExit, match=r"bad\.hel:2: .*'ghost'"):
            main(["ingest", str(bad), "--out", str(tmp_path / "bad.hmg")])
        assert not (tmp_path / "bad.hmg").exists()

    def test_missing_source_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="no such file"):
            main(["ingest", str(tmp_path / "absent.hel")])

    def test_manifest_records_ingest_counters(self, graph_hel, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        assert main(
            [
                "ingest",
                graph_hel,
                "--out",
                str(tmp_path / "graph.hmg"),
                "--telemetry-out",
                str(manifest_path),
            ]
        ) == 0
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["command"] == "ingest"
        assert manifest["counters"]["ingest/nodes"] == 7


class TestMmapGraphFlag:
    def test_census_mmap_matches_plain(self, graph_json, capsys):
        assert main(["census", graph_json, "--root", "i1", "--emax", "2"]) == 0
        plain = capsys.readouterr().out
        assert main(
            ["census", graph_json, "--root", "i1", "--emax", "2", "--mmap-graph"]
        ) == 0
        assert capsys.readouterr().out == plain

    def test_features_mmap_matches_plain(self, graph_json, tmp_path, capsys):
        def run(extra, name):
            out_path = tmp_path / name
            args = [
                "features",
                graph_json,
                "--nodes",
                "i1,a1,p1",
                "--emax",
                "2",
                "--out",
                str(out_path),
            ] + extra
            assert main(args) == 0
            capsys.readouterr()
            return json.loads(out_path.read_text())

        assert run(["--mmap-graph"], "mm.json") == run([], "plain.json")

    def test_manifest_records_mmap_storage(self, graph_json, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        assert main(
            [
                "census",
                graph_json,
                "--root",
                "i1",
                "--emax",
                "2",
                "--mmap-graph",
                "--telemetry-out",
                str(manifest_path),
            ]
        ) == 0
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["provenance"]["annotations"]["census/storage"] == "mmap"


class TestFeatures:
    def test_writes_json(self, graph_json, tmp_path, capsys):
        out_path = tmp_path / "features.json"
        code = main(
            [
                "features",
                graph_json,
                "--nodes",
                "i1,i2",
                "--emax",
                "2",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        document = json.loads(out_path.read_text())
        assert len(document["matrix"]) == 2
        assert "wrote 2 x" in capsys.readouterr().out

    def test_n_jobs_and_cache_flags(self, graph_json, tmp_path, capsys):
        out_path = tmp_path / "features.json"
        cache_path = tmp_path / "census.cache"
        code = main(
            [
                "features",
                graph_json,
                "--nodes",
                "i1,i2,a1,a2",
                "--emax",
                "2",
                "--n-jobs",
                "2",
                "--census-cache",
                str(cache_path),
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        assert cache_path.exists()
        assert "census cache: 4 entries" in capsys.readouterr().err

    def test_empty_nodes_rejected(self, graph_json, tmp_path):
        with pytest.raises(SystemExit, match="at least one node"):
            main(
                [
                    "features",
                    graph_json,
                    "--nodes",
                    "",
                    "--out",
                    str(tmp_path / "x.json"),
                ]
            )


class TestEmbed:
    def test_writes_npy(self, graph_json, tmp_path, capsys):
        out_path = tmp_path / "emb.npy"
        code = main(
            [
                "embed",
                graph_json,
                "--method",
                "deepwalk",
                "--out",
                str(out_path),
                "--dim",
                "8",
                "--num-walks",
                "2",
                "--walk-length",
                "8",
                "--window",
                "3",
            ]
        )
        assert code == 0
        import numpy as np

        matrix = np.load(out_path)
        assert matrix.shape == (7, 8)
        assert "engine=fast" in capsys.readouterr().out

    def test_writes_json_keyed_by_node_id(self, graph_json, tmp_path):
        out_path = tmp_path / "emb.json"
        code = main(
            [
                "embed",
                graph_json,
                "--method",
                "line",
                "--out",
                str(out_path),
                "--dim",
                "4",
                "--line-samples",
                "500",
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert len(payload) == 7
        assert "i1" in payload
        assert len(payload["i1"]) == 4

    def test_engine_and_n_jobs_flags(self, graph_json, tmp_path, capsys):
        out_path = tmp_path / "emb.npy"
        code = main(
            [
                "embed",
                graph_json,
                "--method",
                "node2vec",
                "--out",
                str(out_path),
                "--dim",
                "4",
                "--num-walks",
                "2",
                "--walk-length",
                "6",
                "--window",
                "2",
                "--p",
                "0.5",
                "--q",
                "2.0",
                "--engine",
                "reference",
                "--n-jobs",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine=reference" in out
        assert "n_jobs=2" in out

    def test_bad_engine_rejected(self, graph_json, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "embed",
                    graph_json,
                    "--method",
                    "deepwalk",
                    "--out",
                    str(tmp_path / "x.npy"),
                    "--engine",
                    "turbo",
                ]
            )


class TestRuntime:
    def test_prints_table3_row(self, graph_json, capsys):
        code = main(
            [
                "runtime",
                graph_json,
                "--roots",
                "3",
                "--emax",
                "2",
                "--n-jobs",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "engine=fast" in out
        assert "n_jobs=1" in out

    def test_engine_flag_threads_through(self, graph_json, capsys):
        code = main(
            [
                "runtime",
                graph_json,
                "--roots",
                "2",
                "--emax",
                "2",
                "--engine",
                "reference",
            ]
        )
        assert code == 0
        assert "engine=reference" in capsys.readouterr().out


class TestCollisions:
    def test_reports_bound(self, capsys):
        assert main(["collisions", "--labels", "2", "--max-edges", "4"]) == 0
        out = capsys.readouterr().out
        assert "collision-free e_max >= 4" in out

    def test_first_collision_printed(self, capsys):
        assert main(
            ["collisions", "--labels", "2", "--max-edges", "5", "--first"]
        ) == 0
        out = capsys.readouterr().out
        assert "SmallGraph" in out


@pytest.fixture(scope="module")
def imdb_json(tmp_path_factory):
    """A labelled synthetic graph big enough for the label experiment."""
    from repro.datasets import ImdbConfig, SyntheticIMDB

    graph = SyntheticIMDB(
        ImdbConfig(
            num_movies=20,
            num_actors=30,
            num_directors=8,
            num_writers=10,
            num_composers=5,
            num_keywords=8,
            seed=7,
        )
    ).graph
    target = tmp_path_factory.mktemp("cli") / "imdb.json"
    write_graph_json(graph, target)
    return str(target)


class TestRank:
    def test_prints_table1(self, capsys):
        code = main(
            [
                "rank",
                "--conferences",
                "KDD",
                "--families",
                "classic",
                "--regressors",
                "LinRegr",
                "--train-years",
                "2013,2014",
                "--institutions",
                "12",
                "--authors",
                "2",
                "--papers",
                "8",
                "--trees",
                "10",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "classic" in captured.out
        assert "rank world" in captured.err


class TestLabel:
    def test_prints_sweep(self, imdb_json, capsys):
        code = main(
            [
                "label",
                imdb_json,
                "--features",
                "subgraph",
                "--fractions",
                "0.5",
                "--repeats",
                "2",
                "--per-label",
                "6",
                "--emax",
                "2",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Figure 5A-C" in captured.out
        assert "subgraph" in captured.out
        assert "label task" in captured.err


class TestVersion:
    def test_version_flag_prints_and_exits(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestArtifactStore:
    def test_features_store_logs_summary(self, graph_json, tmp_path, capsys):
        store_path = tmp_path / "store.pkl"
        args = [
            "features",
            graph_json,
            "--nodes",
            "i1,i2",
            "--emax",
            "2",
            "--artifact-store",
            str(store_path),
            "--out",
            str(tmp_path / "features.json"),
        ]
        assert main(args) == 0
        first = capsys.readouterr()
        assert store_path.exists()
        assert "artifact store:" in first.err

        # Warm rerun: the whole feature matrix is served from the store.
        assert main(args) == 0
        second = capsys.readouterr()
        assert "artifact store:" in second.err
        assert first.out == second.out

    def test_census_cache_alias_still_works(self, graph_json, tmp_path, capsys):
        args = [
            "census",
            graph_json,
            "--root",
            "i1",
            "--emax",
            "2",
            "--census-cache",
            str(tmp_path / "census.cache"),
        ]
        assert main(args) == 0
        assert "census cache:" in capsys.readouterr().err

    def test_label_engine_flag(self, imdb_json, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        code = main(
            [
                "label",
                imdb_json,
                "--features",
                "subgraph",
                "--fractions",
                "0.5",
                "--repeats",
                "1",
                "--per-label",
                "4",
                "--emax",
                "2",
                "--engine",
                "reference",
                "--telemetry-out",
                str(manifest_path),
            ]
        )
        assert code == 0
        assert "Figure 5A-C" in capsys.readouterr().out
        manifest = json.loads(manifest_path.read_text())
        assert manifest["provenance"]["annotations"]["run/engine"] == "reference"

    def test_rank_warm_rerun_skips_census_and_embed(self, tmp_path, capsys):
        """Acceptance gate: against a populated store, ``repro rank``
        recomputes no census or embedding artifact and its output is
        bit-identical to the cold run."""
        store_path = tmp_path / "store.pkl"
        manifest_path = tmp_path / "run.json"
        args = [
            "rank",
            "--conferences",
            "KDD",
            "--families",
            "subgraph,deepwalk",
            "--regressors",
            "LinRegr",
            "--train-years",
            "2013,2014",
            "--institutions",
            "10",
            "--authors",
            "2",
            "--papers",
            "6",
            "--trees",
            "5",
            "--emax",
            "2",
            "--artifact-store",
            str(store_path),
            "--telemetry-out",
            str(manifest_path),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        cold_stages = json.loads(manifest_path.read_text())["artifact_store"][
            "stages"
        ]
        assert cold_stages["census"]["misses"] > 0
        assert cold_stages["embed"]["misses"] > 0
        assert store_path.exists()

        assert main(args) == 0
        warm = capsys.readouterr().out
        warm_manifest = json.loads(manifest_path.read_text())
        stages = warm_manifest["artifact_store"]["stages"]
        assert stages["census"]["hits"] > 0
        assert stages["census"]["misses"] == 0
        assert stages["embed"]["hits"] > 0
        assert stages["embed"]["misses"] == 0
        assert warm_manifest["stages"]  # pipeline stage timers recorded
        assert warm == cold


class TestTelemetryAndLogging:
    def test_telemetry_out_writes_manifest(self, graph_json, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        cache_path = tmp_path / "census.cache"
        args = [
            "census",
            graph_json,
            "--root",
            "i1",
            "--emax",
            "2",
            "--census-cache",
            str(cache_path),
            "--telemetry-out",
            str(manifest_path),
        ]
        assert main(args) == 0
        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema_version"] == 1
        assert manifest["command"] == "census"
        assert manifest["config"]["emax"] == 2
        assert manifest["census_cache"]["misses"] == 1
        assert manifest["census_cache"]["load_status"] == "missing"
        assert "total" in manifest["phases"]
        capsys.readouterr()

        # Second run hits the saved cache; the manifest reflects it.
        assert main(args) == 0
        manifest = json.loads(manifest_path.read_text())
        assert manifest["census_cache"]["hits"] == 1
        assert manifest["census_cache"]["hit_rate"] == 1.0
        assert manifest["census_cache"]["load_status"] == "loaded"
        capsys.readouterr()

    def test_runtime_manifest_has_phases_and_cache_stats(
        self, graph_json, tmp_path, capsys
    ):
        manifest_path = tmp_path / "run.json"
        code = main(
            [
                "runtime",
                graph_json,
                "--roots",
                "3",
                "--emax",
                "2",
                "--n-jobs",
                "2",
                "--census-cache",
                str(tmp_path / "census.cache"),
                "--telemetry-out",
                str(manifest_path),
            ]
        )
        assert code == 0
        manifest = json.loads(manifest_path.read_text())
        assert {"census", "embeddings", "total"} <= set(manifest["phases"])
        assert manifest["census_cache"]["misses"] == 3
        assert manifest["provenance"]["n_jobs"] == 2
        assert manifest["provenance"]["annotations"]["census/engine"] == "fast"
        assert manifest["peak_rss_kb"] is None or manifest["peak_rss_kb"] > 0
        capsys.readouterr()

    def test_log_level_flag_silences_diagnostics(self, graph_json, capsys):
        assert main(
            [
                "census",
                graph_json,
                "--root",
                "i1",
                "--emax",
                "2",
                "--log-level",
                "warning",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "classes" not in captured.err  # info diagnostics suppressed
        assert "\t" in captured.out  # results still on stdout

    def test_verbose_flag_dumps_telemetry(self, graph_json, capsys):
        assert main(
            ["census", graph_json, "--root", "i1", "--emax", "2", "-v"]
        ) == 0
        err = capsys.readouterr().err
        assert "telemetry:" in err
        assert "census/calls" in err


class TestPartitionedCensusCLI:
    def test_census_partitions_matches_plain(self, graph_json, capsys):
        assert main(["census", graph_json, "--root", "i1", "--emax", "2"]) == 0
        plain = capsys.readouterr().out
        assert main(
            [
                "census",
                graph_json,
                "--root",
                "i1",
                "--emax",
                "2",
                "--partitions",
                "3",
            ]
        ) == 0
        assert capsys.readouterr().out == plain

    def test_partitioned_run_manifest_and_store(self, graph_json, tmp_path, capsys):
        manifest_path = tmp_path / "run.json"
        store_path = tmp_path / "run.store"
        assert main(
            [
                "features",
                graph_json,
                "--nodes",
                "i1,a1,p1",
                "--emax",
                "2",
                "--partitions",
                "2",
                "--artifact-store",
                str(store_path),
                "--out",
                str(tmp_path / "features.json"),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "census",
                graph_json,
                "--root",
                "i1",
                "--emax",
                "2",
                "--partitions",
                "2",
                "--artifact-store",
                str(store_path),
                "--telemetry-out",
                str(manifest_path),
            ]
        ) == 0
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["provenance"]["annotations"]["run/partitions"] == "2"
        # the store still holds the partition set cut by the features run
        # (the warm census cache short-circuits before it is consulted)
        assert manifest["artifact_store"]["entries"] > 0
        assert manifest["artifact_store"]["approx_payload_bytes"] > 0
        assert manifest["artifact_store"]["stages"]["partition"]["entries"] == 1


class TestNetCLI:
    """Parser plumbing for the net layer: serve transports, worker, executor."""

    def test_serve_requires_a_listen_flag(self, graph_json):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", graph_json])
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["serve", graph_json, "--socket", "/tmp/a", "--tcp", "h:1"]
            )
        args = parser.parse_args(["serve", graph_json, "--tcp", "127.0.0.1:0"])
        assert args.tcp == "127.0.0.1:0"
        assert args.socket is None

    def test_worker_parser(self):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["worker"])  # --listen is required
        args = parser.parse_args(
            ["worker", "--listen", "127.0.0.1:0", "--partitions", "2"]
        )
        assert args.listen == "127.0.0.1:0"
        assert args.func is not None

    def test_worker_preload_requires_partitions(self, graph_json):
        with pytest.raises(SystemExit):
            main(["worker", "--listen", "127.0.0.1:0", "--graph", graph_json])

    def test_workers_flag_builds_context_tuple(self, graph_json):
        from repro.cli import _build_context, build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "census", graph_json, "--root", "i1",
                "--executor", "remote",
                "--workers", "127.0.0.1:9001,127.0.0.1:9002",
                "--workers", "unix:/run/w3.sock",
            ]
        )
        ctx = _build_context(args)
        assert ctx.executor == "remote"
        assert ctx.workers == (
            "127.0.0.1:9001", "127.0.0.1:9002", "unix:/run/w3.sock"
        )

    def test_bad_executor_rejected(self, graph_json):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["census", graph_json, "--root", "i1", "--executor", "carrier"]
            )
