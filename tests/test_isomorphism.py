"""Unit tests for exact isomorphism and small-graph enumeration."""

import pytest

from repro.core.isomorphism import (
    SmallGraph,
    are_isomorphic,
    enumerate_connected_labelled_graphs,
)
from repro.exceptions import GraphError


class TestSmallGraph:
    def test_normalises_edges(self):
        g = SmallGraph((0, 1), [(1, 0)])
        assert g.edges == ((0, 1),)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            SmallGraph((0,), [(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError):
            SmallGraph((0, 1), [(0, 1), (1, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            SmallGraph((0,), [(0, 1)])

    def test_connectivity(self):
        assert SmallGraph((0, 1), [(0, 1)]).is_connected()
        assert not SmallGraph((0, 1, 0), [(0, 1)]).is_connected()
        assert not SmallGraph((), []).is_connected()


class TestAreIsomorphic:
    def test_identical(self):
        g = SmallGraph((0, 1, 0), [(0, 1), (1, 2)])
        assert are_isomorphic(g, g)

    def test_relabelled_nodes(self):
        a = SmallGraph((0, 1, 0), [(0, 1), (1, 2)])
        b = SmallGraph((0, 0, 1), [(0, 2), (2, 1)])
        assert are_isomorphic(a, b)

    def test_different_labels_not_isomorphic(self):
        a = SmallGraph((0, 1), [(0, 1)])
        b = SmallGraph((0, 0), [(0, 1)])
        assert not are_isomorphic(a, b)

    def test_different_topology_not_isomorphic(self):
        star = SmallGraph((0, 0, 0, 0), [(0, 1), (0, 2), (0, 3)])
        path = SmallGraph((0, 0, 0, 0), [(0, 1), (1, 2), (2, 3)])
        assert not are_isomorphic(star, path)

    def test_triangle_vs_path_same_degrees_different(self):
        """C6 vs two triangles would collide on degrees alone; here use a
        smaller classic: the 4-cycle vs the path has different edge counts,
        so use bull-like graphs with equal signatures instead."""
        # Two 1-labelled graphs with identical degree sequences (2,2,2,2,2,2):
        # the 6-cycle and two disjoint triangles - but we need connected
        # graphs, so compare C6 with the prism minus edges... simplest:
        # kite vs cricket have distinct signatures, so just assert the
        # signature check is not the only barrier via C4-with-chord pair.
        a = SmallGraph((0,) * 6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        b = SmallGraph((0,) * 6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)])
        assert not are_isomorphic(a, b)

    def test_labelled_cycle_rotations(self):
        a = SmallGraph((0, 1, 0, 1), [(0, 1), (1, 2), (2, 3), (3, 0)])
        b = SmallGraph((1, 0, 1, 0), [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert are_isomorphic(a, b)

    def test_size_mismatch(self):
        assert not are_isomorphic(
            SmallGraph((0,), []), SmallGraph((0, 0), [(0, 1)])
        )


class TestEnumeration:
    def test_single_edge_classes_one_label(self):
        graphs = list(enumerate_connected_labelled_graphs(1, 1))
        assert len(graphs) == 1

    def test_single_edge_classes_two_labels(self):
        # label pairs: (0,0), (0,1), (1,1) -> 3 classes
        graphs = [
            g for g in enumerate_connected_labelled_graphs(2, 1)
        ]
        assert len(graphs) == 3

    def test_no_same_label_edges_filter(self):
        graphs = list(
            enumerate_connected_labelled_graphs(2, 2, allow_same_label_edges=False)
        )
        for graph in graphs:
            for u, v in graph.edges:
                assert graph.labels[u] != graph.labels[v]

    def test_all_connected(self):
        for graph in enumerate_connected_labelled_graphs(2, 3):
            assert graph.is_connected()

    def test_pairwise_non_isomorphic(self):
        graphs = list(enumerate_connected_labelled_graphs(2, 3))
        for i, a in enumerate(graphs):
            for b in graphs[i + 1:]:
                assert not are_isomorphic(a, b)

    def test_one_label_counts_match_oeis(self):
        """Connected unlabelled graphs by edge count: 1, 3, 5, 12 classes
        with exactly 1..4 edges (A275421 column sums / known small values)."""
        graphs = list(enumerate_connected_labelled_graphs(1, 4))
        by_edges = {}
        for g in graphs:
            by_edges.setdefault(g.num_edges, []).append(g)
        assert len(by_edges[1]) == 1  # single edge
        assert len(by_edges[2]) == 1  # path of length 2
        assert len(by_edges[3]) == 3  # triangle, star, path
        assert len(by_edges[4]) == 5  # paw, C4, star, chair/fork, path

    def test_max_nodes_cap(self):
        graphs = list(enumerate_connected_labelled_graphs(1, 4, max_nodes=3))
        assert all(g.num_nodes <= 3 for g in graphs)

    def test_respects_max_edges(self):
        graphs = list(enumerate_connected_labelled_graphs(2, 2))
        assert all(g.num_edges <= 2 for g in graphs)
