"""Cross-module integration tests: full pipelines on small worlds."""

import numpy as np
import pytest

from repro.core import (
    CensusConfig,
    SubgraphFeatureExtractor,
    label_connectivity,
    rank_features,
)
from repro.core.census import effective_labelset
from repro.datasets import (
    ImdbConfig,
    LoadConfig,
    MagConfig,
    SyntheticIMDB,
    SyntheticLOAD,
    SyntheticMAG,
)
from repro.experiments import (
    EmbeddingParams,
    LabelPredictionExperiment,
    LabelTaskConfig,
    RankPredictionExperiment,
    RankTaskConfig,
    render_figure3,
    render_sweep,
    render_table1,
)
from repro.io import read_features_json, write_features_json
from repro.ml import RandomForestClassifier, macro_f1, train_test_split


class TestSubgraphFeaturesEndToEnd:
    def test_features_classify_imdb_roles(self):
        """Masked subgraph features alone recover IMDB node roles far above
        chance — the core claim of the paper on its hardest dataset."""
        imdb = SyntheticIMDB(
            ImdbConfig(
                num_movies=120,
                num_actors=150,
                num_directors=35,
                num_writers=50,
                num_composers=20,
                num_keywords=40,
                seed=10,
            )
        )
        graph = imdb.graph
        nodes, labels = imdb.sample_nodes_per_label(25, rng=0)
        extractor = SubgraphFeatureExtractor(
            CensusConfig(max_edges=2, mask_start_label=True)
        )
        features = extractor.fit_transform(graph, nodes)
        X = np.log1p(features.matrix)
        X_train, X_test, y_train, y_test = train_test_split(
            X, labels, test_size=0.3, rng=0, stratify=labels
        )
        model = RandomForestClassifier(n_estimators=30, random_state=0)
        model.fit(X_train, y_train)
        score = macro_f1(y_test, model.predict(X_test))
        chance = 1.0 / len(np.unique(labels))
        assert score > 2 * chance

    def test_feature_persistence_roundtrip_in_pipeline(self, tmp_path):
        load = SyntheticLOAD(
            LoadConfig(
                num_locations=40,
                num_organizations=30,
                num_actors=40,
                num_dates=20,
                mean_degree=6,
                seed=11,
            )
        )
        extractor = SubgraphFeatureExtractor(
            CensusConfig(max_edges=2, mask_start_label=True)
        )
        nodes, _ = load.sample_nodes_per_label(5, rng=0)
        features = extractor.fit_transform(load.graph, nodes)
        labelset = effective_labelset(
            load.graph, CensusConfig(max_edges=2, mask_start_label=True)
        )
        target = tmp_path / "features.json"
        write_features_json(features, labelset, target)
        restored = read_features_json(target)
        assert np.array_equal(restored.matrix, features.matrix)


class TestRankPipelineShape:
    @pytest.fixture(scope="class")
    def result(self):
        mag = SyntheticMAG(
            MagConfig(
                num_institutions=20,
                authors_per_institution=4,
                papers_per_conference_year=25,
                conferences=("KDD", "ICML"),
                years=tuple(range(2011, 2016)),
                seed=12,
            )
        )
        config = RankTaskConfig(
            train_years=(2013, 2014),
            test_year=2015,
            emax=3,
            forest_trees=40,
            select_large=30,
            embedding_params=EmbeddingParams(
                dim=16, num_walks=3, walk_length=10, window=4, line_samples=6_000
            ),
            seed=0,
        )
        return RankPredictionExperiment(mag, config).run(
            families=("classic", "subgraph", "combined", "deepwalk"),
            regressors=("RanForest", "BayRidge"),
        )

    def test_label_aware_features_beat_blind_embeddings(self, result):
        """The paper's headline for Table 1: subgraph (and classic) features
        dominate structure-only embeddings for relevance prediction."""
        for regressor in ("RanForest", "BayRidge"):
            subgraph = result.average(regressor, "subgraph")
            embedding = result.average(regressor, "deepwalk")
            assert subgraph > embedding

    def test_combined_at_least_competitive(self, result):
        """Combined features stabilise performance (Section 4.2.4)."""
        combined = result.average("RanForest", "combined")
        weakest = min(
            result.average("RanForest", "classic"),
            result.average("RanForest", "subgraph"),
        )
        assert combined >= weakest - 0.15

    def test_renderers_cover_all_cells(self, result):
        table = render_table1(result, families=("classic", "subgraph", "combined", "deepwalk"))
        figure = render_figure3(result, families=("classic", "subgraph", "combined", "deepwalk"))
        for name in ("classic", "subgraph", "combined", "deepwalk"):
            assert name in table
            assert name in figure
        assert "KDD" in figure and "ICML" in figure


class TestLabelPipelineShape:
    def test_subgraph_beats_embeddings_on_load(self):
        """Figure 5's headline on a small LOAD world."""
        load = SyntheticLOAD(
            LoadConfig(
                num_locations=70,
                num_organizations=50,
                num_actors=80,
                num_dates=35,
                mean_degree=10,
                seed=13,
            )
        )
        config = LabelTaskConfig(
            per_label=25,
            emax=3,
            n_repeats=3,
            train_fractions=(0.7,),
            embedding_params=EmbeddingParams(
                dim=24, num_walks=4, walk_length=15, window=4, line_samples=20_000
            ),
            logreg_grid=(0.1, 1.0),
            seed=0,
        )
        experiment = LabelPredictionExperiment(load.graph, config)
        sweep = experiment.run_training_sweep(features=("subgraph", "deepwalk"))
        assert sweep.mean("subgraph", 0.7) > sweep.mean("deepwalk", 0.7)
        text = render_sweep("Figure 5 (LOAD)", sweep)
        assert "subgraph" in text

    def test_masking_prevents_trivial_label_leak(self):
        """Without masking, the root's own label is encoded in every rooted
        subgraph and the task becomes trivially easy; with masking the
        features must work through the neighbourhood. Verify the masked
        features do not contain a column that is a pure root-label
        indicator."""
        load = SyntheticLOAD(
            LoadConfig(
                num_locations=40,
                num_organizations=30,
                num_actors=40,
                num_dates=20,
                mean_degree=8,
                seed=14,
            )
        )
        config = LabelTaskConfig(per_label=15, emax=2, seed=0)
        experiment = LabelPredictionExperiment(load.graph, config)
        X = experiment.subgraph_matrix()
        y = experiment.targets
        # No single column may perfectly partition the classes.
        for column in range(X.shape[1]):
            values = X[:, column]
            for cls in np.unique(y):
                members = values[y == cls]
                others = values[y != cls]
                if members.size and others.size:
                    assert not (
                        members.min() > others.max() or members.max() < others.min()
                    )


class TestInterpretationEndToEnd:
    def test_importance_ranking_realisable(self):
        """Top-ranked subgraph features decode into realisable graphs."""
        from repro.core.interpret import realize_code

        mag = SyntheticMAG(
            MagConfig(
                num_institutions=10,
                authors_per_institution=3,
                papers_per_conference_year=12,
                conferences=("KDD",),
                years=(2013, 2014, 2015),
                seed=15,
            )
        )
        config = RankTaskConfig(
            train_years=(2014,), test_year=2015, emax=3, forest_trees=20, seed=0
        )
        experiment = RankPredictionExperiment(mag, config)
        model, space = experiment.fit_forest_on_family("KDD", "subgraph")
        graph = mag.build_rank_graph("KDD", 2013)
        ranking = rank_features(
            model.feature_importances_, space, graph.labelset, top=3
        )
        for feature in ranking:
            realised = realize_code(feature.code)
            assert realised is not None
            assert realised.encode(len(graph.labelset)) == feature.code
