"""Unit tests for the characteristic-sequence encoding."""

import pytest

from repro.core.encoding import (
    canonical_code,
    code_num_edges,
    code_num_nodes,
    code_to_string,
    encode_subgraph,
    node_sequence,
    string_to_code,
    validate_code,
)
from repro.core.labels import LabelSet
from repro.exceptions import EncodingError


class TestNodeSequence:
    def test_counts_by_label(self):
        # node labelled 0 with neighbours labelled 1, 1, 2 in a 3-alphabet
        assert node_sequence(0, [1, 1, 2], 3) == (0, 0, 2, 1)

    def test_no_neighbours(self):
        assert node_sequence(2, [], 3) == (2, 0, 0, 0)


class TestCanonicalCode:
    def test_descending_sort(self):
        seqs = [(0, 1), (2, 0), (1, 1)]
        assert canonical_code(seqs) == ((2, 0), (1, 1), (0, 1))

    def test_paper_example_figure_1b(self):
        """The z-y-z path of Fig. 1B: encoding z010 z010 y002."""
        ls = LabelSet(("x", "y", "z"))  # fixed ordering x, y, z
        z, y = ls.index("z"), ls.index("y")
        code = encode_subgraph([z, y, z], [(0, 1), (1, 2)], 3)
        # Two z nodes each with one y neighbour, one y node with two z's.
        assert code == ((z, 0, 1, 0), (z, 0, 1, 0), (y, 0, 0, 2))


class TestEncodeSubgraph:
    def test_order_invariance(self):
        """Visiting nodes in any order yields the same code."""
        labels = [0, 1, 2]
        edges = [(0, 1), (1, 2)]
        base = encode_subgraph(labels, edges, 3)
        permuted = encode_subgraph([2, 1, 0], [(2, 1), (1, 0)], 3)
        assert base == permuted

    def test_single_node(self):
        assert encode_subgraph([1], [], 2) == ((1, 0, 0),)

    def test_bad_edge_raises(self):
        with pytest.raises(EncodingError, match="outside the subgraph"):
            encode_subgraph([0], [(0, 1)], 1)

    def test_bad_label_raises(self):
        with pytest.raises(EncodingError, match="outside alphabet"):
            encode_subgraph([5], [], 2)

    def test_distinguishes_star_from_path(self):
        """A 3-edge star and a 3-edge path over one label differ."""
        star = encode_subgraph([0, 0, 0, 0], [(0, 1), (0, 2), (0, 3)], 1)
        path = encode_subgraph([0, 0, 0, 0], [(0, 1), (1, 2), (2, 3)], 1)
        assert star != path

    def test_label_sensitivity(self):
        """Same topology, different labelling -> different codes."""
        a = encode_subgraph([0, 1], [(0, 1)], 2)
        b = encode_subgraph([0, 0], [(0, 1)], 2)
        assert a != b


class TestStringRoundtrip:
    def test_roundtrip(self):
        ls = LabelSet(("x", "y", "z"))
        code = encode_subgraph([2, 1, 2], [(0, 1), (1, 2)], 3)
        text = code_to_string(code, ls)
        assert string_to_code(text, ls) == code

    def test_string_format(self):
        ls = LabelSet(("x", "y"))
        code = encode_subgraph([0, 1], [(0, 1)], 2)
        text = code_to_string(code, ls)
        assert text == "y1.0|x0.1"

    def test_multidigit_counts_roundtrip(self):
        ls = LabelSet(("a", "b"))
        # hub with 12 leaves
        labels = [0] + [1] * 12
        edges = [(0, i) for i in range(1, 13)]
        code = encode_subgraph(labels, edges, 2)
        assert string_to_code(code_to_string(code, ls), ls) == code

    def test_prefix_label_names_roundtrip(self):
        """A label that is a prefix of another must parse correctly."""
        ls = LabelSet(("A", "AB"))
        code = encode_subgraph([0, 1], [(0, 1)], 2)
        assert string_to_code(code_to_string(code, ls), ls) == code

    def test_empty_string_raises(self):
        with pytest.raises(EncodingError):
            string_to_code("", LabelSet(("a",)))

    def test_unknown_prefix_raises(self):
        with pytest.raises(EncodingError, match="no known label"):
            string_to_code("q1.0", LabelSet(("a", "b")))

    def test_wrong_arity_raises(self):
        with pytest.raises(EncodingError, match="counts"):
            string_to_code("a1", LabelSet(("a", "b")))

    def test_non_numeric_raises(self):
        with pytest.raises(EncodingError, match="non-numeric"):
            string_to_code("ax.y", LabelSet(("a", "b")))


class TestCodeProperties:
    def test_num_nodes(self):
        code = encode_subgraph([0, 1, 0], [(0, 1), (1, 2)], 2)
        assert code_num_nodes(code) == 3

    def test_num_edges_handshake(self):
        code = encode_subgraph([0, 1, 0], [(0, 1), (1, 2)], 2)
        assert code_num_edges(code) == 2

    def test_odd_degree_sum_raises(self):
        with pytest.raises(EncodingError, match="odd"):
            code_num_edges(((0, 1),))


class TestValidateCode:
    def test_valid_passes(self):
        code = encode_subgraph([0, 1], [(0, 1)], 2)
        validate_code(code, 2)

    def test_empty_raises(self):
        with pytest.raises(EncodingError):
            validate_code((), 2)

    def test_wrong_width_raises(self):
        with pytest.raises(EncodingError, match="width"):
            validate_code(((0, 1),), 2)

    def test_unsorted_raises(self):
        with pytest.raises(EncodingError, match="descending"):
            validate_code(((0, 0, 1), (1, 1, 0)), 2)

    def test_negative_count_raises(self):
        with pytest.raises(EncodingError, match="negative"):
            validate_code(((0, -1, 0),), 2)

    def test_bad_label_raises(self):
        with pytest.raises(EncodingError, match="alphabet"):
            validate_code(((5, 0, 0),), 2)
