"""Unit tests for code interpretation: describing, realising, ranking."""

import numpy as np
import pytest

from repro.core.encoding import encode_subgraph
from repro.core.features import FeatureSpace
from repro.core.interpret import describe_code, rank_features, realize_code
from repro.core.isomorphism import SmallGraph, are_isomorphic
from repro.core.labels import LabelSet
from repro.exceptions import EncodingError


class TestDescribeCode:
    def test_mentions_counts_and_labels(self):
        ls = LabelSet(("A", "P"))
        code = encode_subgraph([0, 0, 1], [(0, 2), (1, 2)], 2)
        text = describe_code(code, ls)
        assert "3 nodes, 2 edges" in text
        assert "P(A:2)" in text

    def test_isolated_node(self):
        ls = LabelSet(("A",))
        code = encode_subgraph([0], [], 1)
        assert "1 nodes, 0 edges" in describe_code(code, ls)


class TestRealizeCode:
    @pytest.mark.parametrize(
        "labels,edges,k",
        [
            ([0, 1], [(0, 1)], 2),
            ([0, 1, 0], [(0, 1), (1, 2)], 2),
            ([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)], 2),
            ([0, 1, 2], [(0, 1), (1, 2), (0, 2)], 3),
            ([0, 0, 1, 1], [(0, 2), (2, 1), (1, 3), (3, 0)], 2),
        ],
    )
    def test_realisation_has_matching_code(self, labels, edges, k):
        code = encode_subgraph(labels, edges, k)
        graph = realize_code(code)
        assert graph is not None
        assert graph.encode(k) == code

    def test_realisation_isomorphic_for_small_codes(self):
        """Below the collision bound, realisation recovers the exact class."""
        original = SmallGraph((0, 1, 0), [(0, 1), (1, 2)])
        code = original.encode(2)
        realised = realize_code(code)
        assert are_isomorphic(original, realised)

    def test_unrealisable_code_returns_none(self):
        # One node demanding a neighbour, nothing to attach to.
        assert realize_code(((0, 1, 0),)) is None


class TestRankFeatures:
    def _space_with_codes(self):
        ls = LabelSet(("A", "B"))
        codes = [
            encode_subgraph([0, 1], [(0, 1)], 2),
            encode_subgraph([0, 1, 1], [(0, 1), (0, 2)], 2),
            encode_subgraph([0, 0], [(0, 1)], 2),
        ]
        return ls, FeatureSpace(codes)

    def test_orders_by_importance(self):
        ls, space = self._space_with_codes()
        ranking = rank_features([0.1, 0.7, 0.2], space, ls, top=3)
        assert [r.column for r in ranking] == [1, 2, 0]
        assert ranking[0].rank == 1
        assert ranking[0].importance == pytest.approx(0.7)

    def test_top_limits_output(self):
        ls, space = self._space_with_codes()
        assert len(rank_features([0.1, 0.7, 0.2], space, ls, top=1)) == 1

    def test_misaligned_importances_raise(self):
        ls, space = self._space_with_codes()
        with pytest.raises(EncodingError, match="importances"):
            rank_features([0.1], space, ls)

    def test_non_code_keys_raise(self):
        ls = LabelSet(("A", "B"))
        space = FeatureSpace(["a-string-key"])
        with pytest.raises(EncodingError, match="canonical"):
            rank_features([1.0], space, ls)

    def test_render_contains_description(self):
        ls, space = self._space_with_codes()
        ranking = rank_features([0.5, 0.3, 0.2], space, ls, top=1)
        text = ranking[0].render(ls)
        assert "#1" in text
        assert "importance" in text
