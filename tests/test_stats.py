"""Tests for topology statistics."""

import numpy as np
import pytest

from repro.core.graph import HeteroGraph
from repro.core.stats import (
    degree_summary,
    hub_fraction,
    label_assortativity,
    mixing_matrix,
    summarize,
)
from repro.datasets import complete_bipartite, star
from repro.exceptions import GraphError


@pytest.fixture
def regular_graph():
    """4-cycle: every node degree 2."""
    return HeteroGraph.from_edges(
        {"a": "X", "b": "X", "c": "X", "d": "X"},
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")],
    )


class TestDegreeSummary:
    def test_regular_graph_zero_gini(self, regular_graph):
        summary = degree_summary(regular_graph)
        assert summary.mean == 2.0
        assert summary.gini == pytest.approx(0.0, abs=1e-12)
        assert summary.maximum == 2

    def test_star_is_skewed(self):
        graph = star("M", ["A"] * 20)
        summary = degree_summary(graph)
        assert summary.maximum == 20
        assert summary.median == 1.0
        assert summary.gini > 0.4

    def test_empty_degrees(self):
        graph = HeteroGraph.from_edges({"a": "A", "b": "B"}, [])
        summary = degree_summary(graph)
        assert summary.mean == 0.0
        assert summary.gini == 0.0

    def test_render(self, regular_graph):
        assert "gini" in degree_summary(regular_graph).render()


class TestMixingMatrix:
    def test_rows_sum_to_one(self, publication_graph):
        mix = mixing_matrix(publication_graph)
        assert np.allclose(mix.sum(axis=1), 1.0)

    def test_bipartite_mixing(self):
        graph = complete_bipartite("A", 3, "B", 4)
        mix = mixing_matrix(graph)
        a = graph.labelset.index("A")
        b = graph.labelset.index("B")
        assert mix[a, b] == 1.0
        assert mix[a, a] == 0.0

    def test_unnormalized_counts_endpoints(self, publication_graph):
        counts = mixing_matrix(publication_graph, normalize=False)
        assert counts.sum() == 2 * publication_graph.num_edges


class TestAssortativity:
    def test_single_label_is_one(self, regular_graph):
        assert label_assortativity(regular_graph) == 1.0

    def test_bipartite_is_disassortative(self):
        graph = complete_bipartite("A", 4, "B", 4)
        assert label_assortativity(graph) < -0.9

    def test_needs_edges(self):
        graph = HeteroGraph.from_edges({"a": "A"}, [])
        with pytest.raises(GraphError):
            label_assortativity(graph)

    def test_mixed_graph_in_range(self, publication_graph):
        value = label_assortativity(publication_graph)
        assert -1.0 <= value <= 1.0


class TestHubFraction:
    def test_star_concentrates_edges(self):
        graph = star("M", ["A"] * 50)
        assert hub_fraction(graph, percentile=90) >= 0.45

    def test_regular_graph_no_hubs(self, regular_graph):
        assert hub_fraction(regular_graph, percentile=90) == 0.0

    def test_empty_graph(self):
        graph = HeteroGraph.from_edges({"a": "A"}, [])
        assert hub_fraction(graph) == 0.0


class TestSummarize:
    def test_contains_all_sections(self, publication_graph):
        text = summarize(publication_graph)
        assert "HeteroGraph" in text
        assert "assortativity" in text
        assert "mixing matrix" in text
