"""Unit tests for the per-root census cache and its extractor wiring."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.cache import CensusCache, census_cache_key
from repro.core.census import CensusConfig, subgraph_census
from repro.core.features import SubgraphFeatureExtractor
from repro.core.graph import HeteroGraph


@pytest.fixture
def config() -> CensusConfig:
    return CensusConfig(max_edges=3)


class TestCensusCacheKey:
    def test_key_varies_with_each_component(self, publication_graph, config):
        base = census_cache_key(publication_graph, config, 0)
        assert census_cache_key(publication_graph, config, 1) != base
        other_config = CensusConfig(max_edges=4)
        assert census_cache_key(publication_graph, other_config, 0) != base
        other_graph = HeteroGraph.from_edges(
            {"a": "A", "b": "B"}, [("a", "b")]
        )
        assert census_cache_key(other_graph, config, 0) != base

    def test_key_normalises_numpy_roots(self, publication_graph, config):
        assert census_cache_key(
            publication_graph, config, np.int64(2)
        ) == census_cache_key(publication_graph, config, 2)


class TestCensusCache:
    def test_roundtrip_and_stats(self, publication_graph, config):
        cache = CensusCache()
        assert cache.get(publication_graph, config, 0) is None
        census = subgraph_census(publication_graph, 0, config)
        cache.put(publication_graph, config, 0, census)
        assert cache.get(publication_graph, config, 0) == census
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_get_returns_defensive_copy(self, publication_graph, config):
        cache = CensusCache()
        cache.put(publication_graph, config, 0, Counter({"k": 1}))
        hit = cache.get(publication_graph, config, 0)
        hit["k"] = 999
        assert cache.get(publication_graph, config, 0) == Counter({"k": 1})

    def test_persistence_roundtrip(self, publication_graph, config, tmp_path):
        path = tmp_path / "census.cache"
        cache = CensusCache(path)
        census = subgraph_census(publication_graph, 1, config)
        cache.put(publication_graph, config, 1, census)
        cache.save()

        reloaded = CensusCache(path)
        assert len(reloaded) == 1
        assert reloaded.get(publication_graph, config, 1) == census

    def test_corrupt_file_starts_empty(self, tmp_path):
        path = tmp_path / "census.cache"
        path.write_bytes(b"not a pickle")
        assert len(CensusCache(path)) == 0

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError, match="path"):
            CensusCache().save()

    def test_clear_resets_everything(self, publication_graph, config):
        cache = CensusCache()
        cache.put(publication_graph, config, 0, Counter({"k": 1}))
        cache.get(publication_graph, config, 0)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)


class TestExtractorCacheIntegration:
    def test_second_extraction_is_all_hits(self, publication_graph, config):
        cache = CensusCache()
        extractor = SubgraphFeatureExtractor(config, cache=cache)
        nodes = [0, 2, 4]
        first = extractor.census_many(publication_graph, nodes)
        assert cache.misses == len(nodes) and cache.hits == 0
        second = extractor.census_many(publication_graph, nodes)
        assert cache.hits == len(nodes)
        assert first == second

    def test_cached_results_match_uncached(self, publication_graph, config):
        nodes = list(range(publication_graph.num_nodes))
        plain = SubgraphFeatureExtractor(config).census_many(
            publication_graph, nodes
        )
        cache = CensusCache()
        cached_extractor = SubgraphFeatureExtractor(config, cache=cache)
        cached_extractor.census_many(publication_graph, nodes)  # warm
        warm = cached_extractor.census_many(publication_graph, nodes)
        assert warm == plain

    def test_config_change_misses(self, publication_graph):
        cache = CensusCache()
        SubgraphFeatureExtractor(
            CensusConfig(max_edges=2), cache=cache
        ).census_many(publication_graph, [0])
        SubgraphFeatureExtractor(
            CensusConfig(max_edges=3), cache=cache
        ).census_many(publication_graph, [0])
        assert cache.hits == 0
        assert len(cache) == 2
