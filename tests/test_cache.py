"""Unit tests for the per-root census cache and its extractor wiring."""

from __future__ import annotations

import logging
import pickle
from collections import Counter
from contextlib import contextmanager

import numpy as np
import pytest

import repro.core.cache as cache_module
from repro.core.cache import CensusCache, census_cache_key
from repro.core.census import CensusConfig, subgraph_census
from repro.core.features import SubgraphFeatureExtractor
from repro.core.graph import HeteroGraph


@pytest.fixture
def config() -> CensusConfig:
    return CensusConfig(max_edges=3)


class TestCensusCacheKey:
    def test_key_varies_with_each_component(self, publication_graph, config):
        base = census_cache_key(publication_graph, config, 0)
        assert census_cache_key(publication_graph, config, 1) != base
        other_config = CensusConfig(max_edges=4)
        assert census_cache_key(publication_graph, other_config, 0) != base
        other_graph = HeteroGraph.from_edges(
            {"a": "A", "b": "B"}, [("a", "b")]
        )
        assert census_cache_key(other_graph, config, 0) != base

    def test_key_normalises_numpy_roots(self, publication_graph, config):
        assert census_cache_key(
            publication_graph, config, np.int64(2)
        ) == census_cache_key(publication_graph, config, 2)


class TestCensusCache:
    def test_roundtrip_and_stats(self, publication_graph, config):
        cache = CensusCache()
        assert cache.get(publication_graph, config, 0) is None
        census = subgraph_census(publication_graph, 0, config)
        cache.put(publication_graph, config, 0, census)
        assert cache.get(publication_graph, config, 0) == census
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_get_returns_defensive_copy(self, publication_graph, config):
        cache = CensusCache()
        cache.put(publication_graph, config, 0, Counter({"k": 1}))
        hit = cache.get(publication_graph, config, 0)
        hit["k"] = 999
        assert cache.get(publication_graph, config, 0) == Counter({"k": 1})

    def test_persistence_roundtrip(self, publication_graph, config, tmp_path):
        path = tmp_path / "census.cache"
        cache = CensusCache(path)
        census = subgraph_census(publication_graph, 1, config)
        cache.put(publication_graph, config, 1, census)
        cache.save()

        reloaded = CensusCache(path)
        assert len(reloaded) == 1
        assert reloaded.get(publication_graph, config, 1) == census

    def test_corrupt_file_starts_empty(self, tmp_path):
        path = tmp_path / "census.cache"
        path.write_bytes(b"not a pickle")
        assert len(CensusCache(path)) == 0

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError, match="path"):
            CensusCache().save()

    def test_clear_resets_everything(self, publication_graph, config):
        cache = CensusCache()
        cache.put(publication_graph, config, 0, Counter({"k": 1}))
        cache.get(publication_graph, config, 0)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)


class TestExtractorCacheIntegration:
    def test_second_extraction_is_all_hits(self, publication_graph, config):
        cache = CensusCache()
        extractor = SubgraphFeatureExtractor(config, cache=cache)
        nodes = [0, 2, 4]
        first = extractor.census_many(publication_graph, nodes)
        assert cache.misses == len(nodes) and cache.hits == 0
        second = extractor.census_many(publication_graph, nodes)
        assert cache.hits == len(nodes)
        assert first == second

    def test_cached_results_match_uncached(self, publication_graph, config):
        nodes = list(range(publication_graph.num_nodes))
        plain = SubgraphFeatureExtractor(config).census_many(
            publication_graph, nodes
        )
        cache = CensusCache()
        cached_extractor = SubgraphFeatureExtractor(config, cache=cache)
        cached_extractor.census_many(publication_graph, nodes)  # warm
        warm = cached_extractor.census_many(publication_graph, nodes)
        assert warm == plain

    def test_config_change_misses(self, publication_graph):
        cache = CensusCache()
        SubgraphFeatureExtractor(
            CensusConfig(max_edges=2), cache=cache
        ).census_many(publication_graph, [0])
        SubgraphFeatureExtractor(
            CensusConfig(max_edges=3), cache=cache
        ).census_many(publication_graph, [0])
        assert cache.hits == 0
        assert len(cache) == 2


@contextmanager
def captured_cache_warnings():
    """Collect warning records from the cache module's logger.

    ``caplog`` cannot be used here: the ``repro`` hierarchy sets
    ``propagate = False`` once the CLI has configured logging, so records
    never reach the root logger pytest listens on.  Attaching a handler
    directly to the module logger sees them regardless.
    """
    records: list[logging.LogRecord] = []

    class _Collector(logging.Handler):
        def emit(self, record: logging.LogRecord) -> None:
            records.append(record)

    logger = logging.getLogger("repro.core.cache")
    handler = _Collector(level=logging.WARNING)
    old_level = logger.level
    logger.addHandler(handler)
    logger.setLevel(logging.WARNING)
    try:
        yield records
    finally:
        logger.removeHandler(handler)
        logger.setLevel(old_level)


class TestDurability:
    """The save path must never corrupt an existing cache file."""

    def _saved_cache(self, publication_graph, config, path) -> Counter:
        cache = CensusCache(path)
        census = subgraph_census(publication_graph, 0, config)
        cache.put(publication_graph, config, 0, census)
        cache.save()
        return census

    def test_interrupted_save_leaves_original_intact(
        self, publication_graph, config, tmp_path, monkeypatch
    ):
        """A crash mid-write (kill -9 style) must not clobber the file."""
        path = tmp_path / "census.cache"
        census = self._saved_cache(publication_graph, config, path)
        good_bytes = path.read_bytes()

        def dying_dump(obj, fh, protocol=None):
            fh.write(b"\x80\x04partial-garbage")
            raise KeyboardInterrupt("simulated kill")

        monkeypatch.setattr(cache_module.pickle, "dump", dying_dump)
        cache = CensusCache(path)
        cache.put(publication_graph, config, 1, Counter({"new": 1}))
        with pytest.raises(KeyboardInterrupt):
            cache.save()

        # Original contents untouched; the stray bytes live in a temp file.
        assert path.read_bytes() == good_bytes
        leftovers = list(tmp_path.glob("census.cache.*.tmp"))
        assert len(leftovers) == 1
        reloaded = CensusCache(path)
        assert reloaded.load_status == "loaded"
        assert reloaded.get(publication_graph, config, 0) == census

    def test_save_replaces_stale_contents(self, publication_graph, config, tmp_path):
        path = tmp_path / "census.cache"
        self._saved_cache(publication_graph, config, path)
        fresh = CensusCache(path)
        fresh.put(publication_graph, config, 1, Counter({"k": 2}))
        fresh.save()
        assert len(CensusCache(path)) == 2

    def test_save_to_explicit_path(self, publication_graph, config, tmp_path):
        cache = CensusCache()
        cache.put(publication_graph, config, 0, Counter({"k": 1}))
        target = cache.save(tmp_path / "explicit.cache")
        assert target.exists()
        assert len(CensusCache(target)) == 1


class TestLoadStatus:
    """Failed loads must warn and be inspectable, never silent."""

    def test_no_path_is_none(self):
        assert CensusCache().load_status is None

    def test_missing_file(self, tmp_path):
        assert CensusCache(tmp_path / "nope.cache").load_status == "missing"

    def test_loaded(self, publication_graph, config, tmp_path):
        path = tmp_path / "census.cache"
        cache = CensusCache(path)
        cache.put(publication_graph, config, 0, Counter({"k": 1}))
        cache.save()
        assert CensusCache(path).load_status == "loaded"

    def test_corrupt_file_warns(self, tmp_path):
        path = tmp_path / "census.cache"
        path.write_bytes(b"not a pickle")
        with captured_cache_warnings() as records:
            cache = CensusCache(path)
        assert cache.load_status == "corrupt"
        assert len(records) == 1
        message = records[0].getMessage()
        assert "unreadable" in message
        assert str(path) in message

    def test_garbage_text_warns(self, tmp_path):
        """Text garbage parses as protocol-0 opcodes raising ValueError."""
        path = tmp_path / "census.cache"
        path.write_bytes(b"garbage\n")
        with captured_cache_warnings() as records:
            assert CensusCache(path).load_status == "corrupt"
        assert len(records) == 1

    def test_truncated_pickle_warns(self, publication_graph, config, tmp_path):
        path = tmp_path / "census.cache"
        cache = CensusCache(path)
        cache.put(publication_graph, config, 0, Counter({"k": 1}))
        cache.save()
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with captured_cache_warnings() as records:
            assert CensusCache(path).load_status == "corrupt"
        assert len(records) == 1

    def test_version_mismatch_warns_and_ignores(self, tmp_path):
        path = tmp_path / "census.cache"
        path.write_bytes(
            pickle.dumps({"version": 999, "entries": {("fp", (), 0): Counter()}})
        )
        with captured_cache_warnings() as records:
            cache = CensusCache(path)
        assert cache.load_status == "version-mismatch"
        assert len(cache) == 0
        assert len(records) == 1
        assert "version" in records[0].getMessage()

    def test_legacy_payload_is_version_mismatch(self, tmp_path):
        """Pre-versioned caches (a bare dict) are ignored, not crashed on."""
        path = tmp_path / "census.cache"
        path.write_bytes(pickle.dumps({("fp", (), 0): Counter({"k": 1})}))
        with captured_cache_warnings() as records:
            cache = CensusCache(path)
        assert cache.load_status == "version-mismatch"
        assert len(cache) == 0
        assert len(records) == 1


class TestEviction:
    def test_fifo_eviction_beyond_bound(self, publication_graph, config):
        cache = CensusCache(max_entries=2)
        for root in (0, 1, 2):
            cache.put(publication_graph, config, root, Counter({"k": root}))
        assert len(cache) == 2
        assert cache.evictions == 1
        # Oldest entry (root 0) is gone; newest two survive.
        assert cache.get(publication_graph, config, 0) is None
        assert cache.get(publication_graph, config, 1) == Counter({"k": 1})
        assert cache.get(publication_graph, config, 2) == Counter({"k": 2})

    def test_overwrite_does_not_evict(self, publication_graph, config):
        cache = CensusCache(max_entries=2)
        cache.put(publication_graph, config, 0, Counter({"k": 1}))
        cache.put(publication_graph, config, 1, Counter({"k": 2}))
        cache.put(publication_graph, config, 0, Counter({"k": 3}))
        assert cache.evictions == 0
        assert cache.get(publication_graph, config, 0) == Counter({"k": 3})

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            CensusCache(max_entries=0)
