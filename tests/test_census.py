"""Census correctness tests, anchored on the brute-force reference."""

import pytest

from repro.core.census import (
    CensusConfig,
    CensusStats,
    census_total,
    subgraph_census,
)
from repro.core.graph import HeteroGraph
from repro.exceptions import CensusError
from tests.conftest import brute_force_census


class TestConfigValidation:
    def test_defaults(self):
        config = CensusConfig()
        assert config.max_edges == 5
        assert config.max_degree is None

    def test_bad_max_edges(self):
        with pytest.raises(CensusError):
            CensusConfig(max_edges=0)

    def test_bad_max_degree(self):
        with pytest.raises(CensusError):
            CensusConfig(max_degree=-1)

    def test_bad_key(self):
        with pytest.raises(CensusError):
            CensusConfig(key="nonsense")

    def test_bad_cap(self):
        with pytest.raises(CensusError):
            CensusConfig(max_subgraphs=0)

    def test_bad_root_raises(self, triangle_graph):
        with pytest.raises(CensusError):
            subgraph_census(triangle_graph, 99)


class TestAgainstBruteForce:
    """The real census must match exhaustive enumeration exactly."""

    @pytest.mark.parametrize("max_edges", [1, 2, 3, 4, 5])
    def test_triangle_all_roots(self, triangle_graph, max_edges):
        for root in range(triangle_graph.num_nodes):
            expected = brute_force_census(triangle_graph, root, max_edges)
            actual = subgraph_census(
                triangle_graph, root, CensusConfig(max_edges=max_edges)
            )
            assert actual == expected

    @pytest.mark.parametrize("max_edges", [1, 2, 3, 4])
    def test_publication_graph_all_roots(self, publication_graph, max_edges):
        for root in range(publication_graph.num_nodes):
            expected = brute_force_census(publication_graph, root, max_edges)
            actual = subgraph_census(
                publication_graph, root, CensusConfig(max_edges=max_edges)
            )
            assert actual == expected

    @pytest.mark.parametrize("max_edges", [1, 2, 3, 4, 5, 6])
    def test_dense_k4(self, dense_two_label_graph, max_edges):
        expected = brute_force_census(dense_two_label_graph, 0, max_edges)
        actual = subgraph_census(
            dense_two_label_graph, 0, CensusConfig(max_edges=max_edges)
        )
        assert actual == expected

    def test_masked_root(self, publication_graph):
        for root in (0, 3, 5):
            expected = brute_force_census(
                publication_graph, root, 3, mask_start_label=True
            )
            actual = subgraph_census(
                publication_graph,
                root,
                CensusConfig(max_edges=3, mask_start_label=True),
            )
            assert actual == expected

    def test_include_trivial(self, triangle_graph):
        expected = brute_force_census(triangle_graph, 0, 2, include_trivial=True)
        actual = subgraph_census(
            triangle_graph, 0, CensusConfig(max_edges=2, include_trivial=True)
        )
        assert actual == expected

    def test_random_graph_matches(self):
        """Randomised cross-check on a slightly larger graph."""
        import numpy as np

        rng = np.random.default_rng(42)
        labels = {f"v{i}": "XYZ"[rng.integers(3)] for i in range(12)}
        edges = set()
        while len(edges) < 18:
            u, v = rng.integers(0, 12, 2)
            if u != v:
                edges.add((f"v{min(u, v)}", f"v{max(u, v)}"))
        graph = HeteroGraph.from_edges(labels, edges)
        for root in range(0, 12, 3):
            expected = brute_force_census(graph, root, 3)
            actual = subgraph_census(graph, root, CensusConfig(max_edges=3))
            assert actual == expected


class TestPaperExamples:
    def test_figure_1b_path(self, paper_path_graph):
        """Rooted at an end of the z-y-z path: the 1-edge zy subgraph and
        the full path."""
        counts = subgraph_census(
            paper_path_graph, paper_path_graph.index("n1"), CensusConfig(max_edges=5)
        )
        assert census_total(counts) == 2

    def test_figure_1b_center(self, paper_path_graph):
        """Rooted at the centre y: two zy edges plus the full path."""
        counts = subgraph_census(
            paper_path_graph, paper_path_graph.index("n2"), CensusConfig(max_edges=5)
        )
        assert census_total(counts) == 3
        # Both single edges are the same class.
        assert max(counts.values()) == 2

    def test_star_counts(self):
        graph = HeteroGraph.from_edges(
            {"r": "A", "b1": "B", "b2": "B", "b3": "B"},
            [("r", "b1"), ("r", "b2"), ("r", "b3")],
        )
        counts = subgraph_census(graph, 0, CensusConfig(max_edges=3))
        # 3 single edges (one class), 3 two-edge stars, 1 three-edge star.
        assert sorted(counts.values()) == [1, 3, 3]
        assert census_total(counts) == 7

    def test_isolated_root_yields_nothing(self):
        graph = HeteroGraph.from_edges({"a": "A", "b": "B"}, [("a", "b")])
        isolated = HeteroGraph.from_edges({"a": "A", "b": "B", "c": "A"}, [("a", "b")])
        counts = subgraph_census(isolated, isolated.index("c"), CensusConfig())
        assert census_total(counts) == 0

    def test_isolated_root_trivial_only(self):
        graph = HeteroGraph.from_edges({"a": "A", "b": "B", "c": "A"}, [("a", "b")])
        counts = subgraph_census(
            graph, graph.index("c"), CensusConfig(include_trivial=True)
        )
        assert census_total(counts) == 1


class TestKeyModes:
    def test_string_keys_bijective_with_canonical(self, publication_graph):
        canonical = subgraph_census(publication_graph, 0, CensusConfig(max_edges=3))
        strings = subgraph_census(
            publication_graph, 0, CensusConfig(max_edges=3, key="string")
        )
        assert len(canonical) == len(strings)
        assert sorted(canonical.values()) == sorted(strings.values())

    def test_hash_keys_preserve_total(self, publication_graph):
        canonical = subgraph_census(publication_graph, 0, CensusConfig(max_edges=3))
        hashed = subgraph_census(
            publication_graph, 0, CensusConfig(max_edges=3, key="hash")
        )
        assert census_total(hashed) == census_total(canonical)
        # Hash keys may merge classes but never split them.
        assert len(hashed) <= len(canonical)

    def test_hash_matches_canonical_class_count_small(self, triangle_graph):
        canonical = subgraph_census(triangle_graph, 0, CensusConfig(max_edges=3))
        hashed = subgraph_census(
            triangle_graph, 0, CensusConfig(max_edges=3, key="hash")
        )
        assert sorted(hashed.values()) == sorted(canonical.values())


class TestHeuristics:
    def test_grouping_does_not_change_counts(self, publication_graph):
        on = subgraph_census(
            publication_graph, 0, CensusConfig(max_edges=4, group_by_label=True)
        )
        off = subgraph_census(
            publication_graph, 0, CensusConfig(max_edges=4, group_by_label=False)
        )
        assert on == off

    def test_dmax_infinite_equals_unbounded(self, publication_graph):
        unbounded = subgraph_census(publication_graph, 0, CensusConfig(max_edges=3))
        high = subgraph_census(
            publication_graph, 0, CensusConfig(max_edges=3, max_degree=100)
        )
        assert unbounded == high

    def test_dmax_produces_subset(self, publication_graph):
        """Capped census counts are pointwise <= the uncapped counts."""
        full = subgraph_census(publication_graph, 0, CensusConfig(max_edges=3))
        capped = subgraph_census(
            publication_graph, 0, CensusConfig(max_edges=3, max_degree=2)
        )
        assert census_total(capped) <= census_total(full)
        for key, count in capped.items():
            assert count <= full[key]

    def test_dmax_keeps_hub_edge_itself(self):
        """A hub neighbour is still recorded, just not expanded through."""
        # root - hub(degree 4) - three more leaves
        graph = HeteroGraph.from_edges(
            {"r": "A", "h": "B", "x": "C", "y": "C", "z": "C"},
            [("r", "h"), ("h", "x"), ("h", "y"), ("h", "z")],
        )
        counts = subgraph_census(
            graph, graph.index("r"), CensusConfig(max_edges=3, max_degree=2)
        )
        # Only the r-h edge is reachable: the hub is not expanded.
        assert census_total(counts) == 1

    def test_dmax_does_not_apply_to_root(self):
        """A high-degree start node is still fully explored (Section 4.3.5:
        outliers occur when a hub is the starting node)."""
        graph = HeteroGraph.from_edges(
            {"r": "A", "a": "B", "b": "B", "c": "B", "d": "B"},
            [("r", "a"), ("r", "b"), ("r", "c"), ("r", "d")],
        )
        counts = subgraph_census(
            graph, graph.index("r"), CensusConfig(max_edges=2, max_degree=1)
        )
        # 4 single edges (one class, count 4) + C(4,2)=6 two-edge stars.
        assert census_total(counts) == 10

    def test_max_subgraphs_cap(self, dense_two_label_graph):
        with pytest.raises(CensusError, match="max_subgraphs"):
            subgraph_census(
                dense_two_label_graph, 0, CensusConfig(max_edges=6, max_subgraphs=3)
            )


class TestCensusStats:
    def test_update_aggregates(self, triangle_graph):
        stats = CensusStats()
        for root in range(3):
            stats.update(subgraph_census(triangle_graph, root, CensusConfig(max_edges=2)))
        assert stats.roots == 3
        assert stats.total_subgraphs > 0
        assert stats.vocabulary_size >= 2
