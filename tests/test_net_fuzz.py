"""Protocol fuzz suite shared by every framed-protocol server.

Both servers on the :mod:`repro.net` substrate — the feature-serving
:class:`ServeDaemon` and the shard-census :class:`ShardWorker` — must
survive hostile framing on both transports: malformed JSON gets a typed
error (never a dropped connection), oversized lines get dropped (never
buffered without bound), split/partial frames reassemble, binary junk
is rejected, and a client that disconnects mid-frame leaves the server
serving everyone else.  One parameterized suite pins all four
server × transport combinations to the same contract.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.dist import ShardWorker
from repro.net import MAX_LINE_BYTES, open_connection
from repro.obs import fresh_telemetry
from repro.serve import FeatureService, ServeConfig, ServeDaemon

TRANSPORTS = ("unix", "tcp")
SERVERS = ("daemon", "worker")


def _graph(seed: int = 0):
    from repro.datasets.synthetic import affinity_graph

    return affinity_graph(
        label_sizes={"a": 8, "b": 6},
        affinity={("a", "b"): 1.0},
        mean_degree=2.5,
        rng=np.random.default_rng(seed),
    )


def _build_server(kind: str, transport: str, tmp_path):
    spec = tmp_path / f"{kind}.sock" if transport == "unix" else "127.0.0.1:0"
    if kind == "daemon":
        return ServeDaemon(FeatureService(_graph(), ServeConfig(emax=3)), spec)
    return ShardWorker(spec)


def _run_against(server, scenario) -> None:
    """Run ``scenario()`` against a live server on its own event loop."""

    async def main():
        ready = asyncio.Event()
        task = asyncio.create_task(server.run(ready))
        await ready.wait()
        try:
            await scenario()
        finally:
            server.stop()
            await task

    with fresh_telemetry():
        asyncio.run(main())


async def _expect_response(reader, writer, payload: bytes) -> dict:
    writer.write(payload)
    await writer.drain()
    line = await reader.readline()
    assert line, "server dropped the connection on a recoverable frame"
    return json.loads(line)


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("kind", SERVERS)
class TestProtocolFuzz:
    def test_malformed_frames_get_typed_errors(self, kind, transport, tmp_path):
        server = _build_server(kind, transport, tmp_path)
        frames = [
            (b"not json at all\n", "bad_request"),
            (b'{"truncated": \n', "bad_request"),
            (b'["an", "array"]\n', "bad_request"),
            (b"12345\n", "bad_request"),
            (b'{"no_op_field": 1}\n', "bad_request"),
            (b'{"op": 99}\n', "bad_request"),
            (b'{"op": "definitely_not_an_op"}\n', "unknown_op"),
            (b"\xff\xfe\x00\x01binary junk\n", "bad_request"),
        ]

        async def scenario():
            reader, writer = await open_connection(server.endpoint)
            for payload, expected in frames:
                response = await _expect_response(reader, writer, payload)
                assert response["ok"] is False, payload
                assert response["error"]["code"] == expected, payload
            # The connection survived every bad frame.
            response = await _expect_response(
                reader, writer, b'{"id": 99, "op": "ping"}\n'
            )
            assert response["ok"] is True
            writer.close()

        _run_against(server, scenario)

    def test_oversized_line_drops_connection(self, kind, transport, tmp_path):
        server = _build_server(kind, transport, tmp_path)

        async def scenario():
            reader, writer = await open_connection(server.endpoint)
            writer.write(b'{"op": "ping", "pad": "' + b"x" * MAX_LINE_BYTES)
            try:
                await writer.drain()
                line = await reader.readline()
            except (ConnectionResetError, BrokenPipeError):
                line = b""
            assert line == b""
            writer.close()
            # The server is still alive for new connections.
            reader2, writer2 = await open_connection(server.endpoint)
            response = await _expect_response(
                reader2, writer2, b'{"op": "ping"}\n'
            )
            assert response["ok"] is True
            writer2.close()

        _run_against(server, scenario)

    def test_split_frames_reassemble(self, kind, transport, tmp_path):
        server = _build_server(kind, transport, tmp_path)

        async def scenario():
            reader, writer = await open_connection(server.endpoint)
            frame = b'{"id": 7, "op": "ping"}\n'
            for i in range(len(frame)):
                writer.write(frame[i: i + 1])
                await writer.drain()
                if i % 5 == 0:
                    await asyncio.sleep(0.001)
            response = json.loads(await reader.readline())
            assert response["id"] == 7
            assert response["ok"] is True
            writer.close()

        _run_against(server, scenario)

    def test_pipelined_frames_in_one_write(self, kind, transport, tmp_path):
        server = _build_server(kind, transport, tmp_path)

        async def scenario():
            reader, writer = await open_connection(server.endpoint)
            writer.write(
                b'{"id": 1, "op": "ping"}\n'
                b"\n"  # blank line is skipped, not answered
                b'{"id": 2, "op": "ping"}\n'
            )
            await writer.drain()
            first = json.loads(await reader.readline())
            second = json.loads(await reader.readline())
            assert [first["id"], second["id"]] == [1, 2]
            writer.close()

        _run_against(server, scenario)

    def test_mid_request_disconnect_leaves_server_serving(
        self, kind, transport, tmp_path
    ):
        server = _build_server(kind, transport, tmp_path)

        async def scenario():
            # Abandon a half-written frame (no trailing newline).
            _, rude = await open_connection(server.endpoint)
            rude.write(b'{"op": "ping", "partial')
            await rude.drain()
            rude.close()
            # Other clients are unaffected.
            reader, writer = await open_connection(server.endpoint)
            response = await _expect_response(
                reader, writer, b'{"op": "ping"}\n'
            )
            assert response["ok"] is True
            writer.close()

        _run_against(server, scenario)
