"""Remote shard executor tests: parity, fault tolerance, worker RPC.

The headline contract: ``executor="remote"`` returns results
**bit-identical** to the local ``sharded_census_map`` pool for every
engine at any worker count — the shard census runs the same code, only
the location changes.  The fault-tolerance contract: a worker killed
mid-census loses nothing; its task is reassigned to a survivor and the
run completes with the same results.

In-process workers (one thread + event loop each) cover parity and the
worker protocol; the kill test uses a real ``repro worker`` subprocess
so SIGKILL severs live connections exactly like a machine failure.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.census import CensusConfig, subgraph_census
from repro.core.features import SubgraphFeatureExtractor
from repro.core.graph import HeteroGraph
from repro.core.sampled import SampledCensusConfig
from repro.dist import (
    PartitionConfig,
    RemoteExecutor,
    ShardWorker,
    partition_graph,
    sharded_census_map,
)
from repro.exceptions import RPCError
from repro.net import NetClient, NetError, RetryPolicy
from repro.obs import fresh_telemetry
from repro.runtime.context import RunContext

WORKER_COUNTS = (1, 2, 3)
ENGINES = ("fast", "reference", "sampled")


def _random_graph(seed: int = 11, n: int = 36) -> HeteroGraph:
    rng = random.Random(seed)
    nodes = {f"n{i}": rng.choice("ABC") for i in range(n)}
    edges = set()
    while len(edges) < int(n * 2.5):
        i, j = rng.randrange(n), rng.randrange(n)
        if i != j:
            edges.add((min(i, j), max(i, j)))
    return HeteroGraph.from_edges(
        nodes, [(f"n{i}", f"n{j}") for i, j in sorted(edges)]
    )


class _WorkerFleet:
    """N in-process ShardWorkers, each on its own thread + event loop."""

    def __init__(self, count: int, transport: str = "tcp", tmp_path=None):
        self.workers: list[ShardWorker] = []
        self.threads: list[threading.Thread] = []
        self.endpoints: list = []
        self._lock = threading.Lock()
        for i in range(count):
            spec = (
                "127.0.0.1:0"
                if transport == "tcp"
                else tmp_path / f"worker{i}.sock"
            )
            worker = ShardWorker(spec)
            thread = threading.Thread(
                target=self._serve, args=(worker,), daemon=True
            )
            thread.start()
            self.workers.append(worker)
            self.threads.append(thread)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            with self._lock:
                if len(self.endpoints) == count:
                    return
            time.sleep(0.02)
        raise RuntimeError("workers failed to start")

    def _serve(self, worker: ShardWorker) -> None:
        async def main():
            ready = asyncio.Event()
            task = asyncio.ensure_future(worker.run(ready))
            await ready.wait()
            with self._lock:
                self.endpoints.append(worker.endpoint)
            await task

        asyncio.run(main())

    def __enter__(self) -> "_WorkerFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        for endpoint in self.endpoints:
            try:
                with NetClient(endpoint, retry=RetryPolicy(retries=0)) as client:
                    client.call({"op": "shutdown"})
            except NetError:
                pass
        for thread in self.threads:
            thread.join(timeout=5)


class TestRemoteParity:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_to_local_pool(self, engine, workers):
        graph = _random_graph()
        config = CensusConfig(max_edges=3)
        sampled = (
            SampledCensusConfig(budget=150, seed=5) if engine == "sampled" else None
        )
        pset = partition_graph(graph, PartitionConfig(num_partitions=3), config)
        roots = list(range(graph.num_nodes))
        with fresh_telemetry():
            local = sharded_census_map(
                graph, roots, config, pset, engine=engine, sampled=sampled
            )
        with _WorkerFleet(workers) as fleet:
            with fresh_telemetry() as telemetry:
                remote = sharded_census_map(
                    graph,
                    roots,
                    config,
                    pset,
                    engine=engine,
                    sampled=sampled,
                    executor="remote",
                    workers=[str(e) for e in fleet.endpoints],
                )
                counters = telemetry.as_dict()["counters"]
        assert set(remote) == set(local)
        for root in local:
            assert remote[root] == local[root], f"root {root} diverged"
        # Worker-side telemetry merged back like the local pool's.
        assert counters["dist/roots_censused"] == len(roots)
        assert counters["net/shards_shipped"] == len(pset)

    def test_parity_over_unix_transport(self, tmp_path):
        graph = _random_graph(seed=3)
        config = CensusConfig(max_edges=3)
        pset = partition_graph(graph, PartitionConfig(num_partitions=2), config)
        roots = list(range(graph.num_nodes))
        with fresh_telemetry():
            local = sharded_census_map(graph, roots, config, pset)
        with _WorkerFleet(2, transport="unix", tmp_path=tmp_path) as fleet:
            with fresh_telemetry():
                remote = sharded_census_map(
                    graph, roots, config, pset,
                    executor="remote",
                    workers=[str(e) for e in fleet.endpoints],
                )
        assert remote == local

    def test_matches_unsharded_census(self):
        """Transitivity check: remote == local shards == plain census."""
        graph = _random_graph(seed=9, n=24)
        config = CensusConfig(max_edges=3)
        pset = partition_graph(graph, PartitionConfig(num_partitions=2), config)
        with _WorkerFleet(2) as fleet:
            with fresh_telemetry():
                remote = sharded_census_map(
                    graph, list(range(graph.num_nodes)), config, pset,
                    executor="remote",
                    workers=[str(e) for e in fleet.endpoints],
                )
        for root in range(graph.num_nodes):
            assert remote[root] == subgraph_census(graph, root, config)

    def test_census_many_routes_through_remote_executor(self):
        """RunContext(executor=, workers=) reaches the wire from the
        feature-extraction layer."""
        graph = _random_graph(seed=21, n=20)
        config = CensusConfig(max_edges=3)
        nodes = list(range(graph.num_nodes))
        with fresh_telemetry():
            expected = SubgraphFeatureExtractor(config).census_many(graph, nodes)
        with _WorkerFleet(2) as fleet:
            ctx = RunContext(
                executor="remote",
                workers=tuple(str(e) for e in fleet.endpoints),
            )
            with fresh_telemetry() as telemetry:
                actual = SubgraphFeatureExtractor(
                    config, partitions=2, ctx=ctx
                ).census_many(graph, nodes)
                counters = telemetry.as_dict()["counters"]
        assert actual == expected
        assert counters["net/requests"] > 0


class TestFaultTolerance:
    def test_killed_worker_reassigns_mid_run(self, tmp_path):
        """SIGKILL one of two real worker processes while its census is
        in flight; the survivor finishes its shards, bit-identically."""
        graph = _random_graph(seed=17, n=60)
        config = CensusConfig(max_edges=4)
        pset = partition_graph(graph, PartitionConfig(num_partitions=4), config)
        roots = list(range(graph.num_nodes))
        with fresh_telemetry():
            local = sharded_census_map(graph, roots, config, pset)

        socket_a = tmp_path / "victim.sock"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--listen", f"unix:{socket_a}"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 30
            while not socket_a.exists():
                assert time.monotonic() < deadline, "victim worker never bound"
                assert victim.poll() is None, "victim worker exited early"
                time.sleep(0.05)

            with _WorkerFleet(1, transport="unix", tmp_path=tmp_path) as fleet:
                killer_done = threading.Event()

                def kill_when_busy():
                    # Poll the victim over its own connection; workers
                    # answer stats even mid-census (single compute
                    # thread, responsive loop), so inflight > 0 means a
                    # census RPC is genuinely being executed right now.
                    with NetClient(socket_a, retry=RetryPolicy(retries=0)) as c:
                        while not killer_done.is_set():
                            try:
                                stats = c.call({"op": "stats"}, retry=False)
                            except NetError:
                                return
                            if stats["inflight"] > 0:
                                victim.send_signal(signal.SIGKILL)
                                return
                            time.sleep(0.005)

                killer = threading.Thread(target=kill_when_busy, daemon=True)
                killer.start()
                try:
                    with fresh_telemetry() as telemetry:
                        remote = sharded_census_map(
                            graph, roots, config, pset,
                            executor="remote",
                            workers=[f"unix:{socket_a}", str(fleet.endpoints[0])],
                        )
                        counters = telemetry.as_dict()["counters"]
                finally:
                    killer_done.set()
                    killer.join(timeout=5)
            assert victim.poll() is not None, "victim was never killed"
            assert remote == local
            assert counters.get("net/worker_deaths", 0) >= 1
            assert counters.get("net/reassignments", 0) >= 1
        finally:
            if victim.poll() is None:
                victim.kill()
            victim.wait(timeout=10)

    def test_all_workers_dead_raises_rpc_error(self, tmp_path):
        graph = _random_graph(seed=5, n=16)
        config = CensusConfig(max_edges=3)
        pset = partition_graph(graph, PartitionConfig(num_partitions=2), config)
        executor = RemoteExecutor(
            [tmp_path / "ghost-a.sock", tmp_path / "ghost-b.sock"],
            connect_timeout=0.2,
            retry=RetryPolicy(retries=0),
        )
        tasks = [(pset.partitions[i], [i]) for i in range(len(pset))]
        with fresh_telemetry():
            with pytest.raises(RPCError):
                executor.census_map(tasks, config)

    def test_task_retry_budget_exhaustion_is_fatal(self):
        """A worker that always times out condemns the task after the
        reassignment budget, not in an infinite loop."""
        graph = _random_graph(seed=5, n=16)
        config = CensusConfig(max_edges=3)
        pset = partition_graph(graph, PartitionConfig(num_partitions=1), config)

        class _BlackHoleWorker(ShardWorker):
            async def _op_census(self, request):
                await asyncio.sleep(30)

        spec = "127.0.0.1:0"
        worker = _BlackHoleWorker(spec)
        box = {}

        def serve():
            async def main():
                ready = asyncio.Event()
                task = asyncio.ensure_future(worker.run(ready))
                await ready.wait()
                box["endpoint"] = worker.endpoint
                await task

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while "endpoint" not in box and time.monotonic() < deadline:
            time.sleep(0.02)
        executor = RemoteExecutor(
            [box["endpoint"]],
            request_timeout=0.3,
            retry=RetryPolicy(retries=0),
            max_task_retries=0,
            heartbeat_interval=10.0,
        )
        tasks = [(pset.partitions[0], [0, 1])]
        try:
            with fresh_telemetry():
                with pytest.raises(RPCError):
                    executor.census_map(tasks, config)
        finally:
            try:
                with NetClient(box["endpoint"], retry=RetryPolicy(retries=0)) as c:
                    c.call({"op": "shutdown"}, timeout=1.0, retry=False)
            except NetError:
                pass
            thread.join(timeout=10)

    def test_no_endpoints_rejected(self):
        with pytest.raises(ValueError):
            RemoteExecutor([])


class TestWorkerProtocol:
    def test_census_on_unloaded_shard_is_shard_error(self):
        from repro.net.protocol import encode_blob

        with _WorkerFleet(1) as fleet:
            with fresh_telemetry():
                with NetClient(fleet.endpoints[0]) as client:
                    with pytest.raises(NetError) as excinfo:
                        client.call(
                            {
                                "op": "census",
                                "shard": 7,
                                "blob": encode_blob(
                                    ([0], CensusConfig(max_edges=3), None, None)
                                ),
                            }
                        )
        assert excinfo.value.code == "shard_error"

    def test_load_shard_is_idempotent_and_inventoried(self):
        from repro.net.protocol import encode_blob

        graph = _random_graph(seed=2, n=14)
        config = CensusConfig(max_edges=3)
        pset = partition_graph(graph, PartitionConfig(num_partitions=2), config)
        with _WorkerFleet(1) as fleet:
            with fresh_telemetry():
                with NetClient(fleet.endpoints[0]) as client:
                    for _ in range(2):  # a retried ship must be harmless
                        result = client.call(
                            {
                                "op": "load_shard",
                                "shard": 0,
                                "blob": encode_blob(pset.partitions[0]),
                            }
                        )
                        assert result["loaded"] == 0
                    assert client.ping()["shards"] == [0]
                    stats = client.call({"op": "stats"})
                    assert stats["censuses"] == 0
                    assert stats["inflight"] == 0

    def test_preloaded_shards_skip_shipping(self):
        """A worker started with shards already loaded (repro worker
        --graph) advertises them; the executor ships nothing."""
        graph = _random_graph(seed=8, n=18)
        config = CensusConfig(max_edges=3)
        pset = partition_graph(graph, PartitionConfig(num_partitions=2), config)
        preloaded = {i: pset.partitions[i] for i in range(len(pset))}
        box = {}

        def serve():
            worker = ShardWorker("127.0.0.1:0", partitions=preloaded)
            box["worker"] = worker

            async def main():
                ready = asyncio.Event()
                task = asyncio.ensure_future(worker.run(ready))
                await ready.wait()
                box["endpoint"] = worker.endpoint
                await task

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while "endpoint" not in box and time.monotonic() < deadline:
            time.sleep(0.02)
        roots = list(range(graph.num_nodes))
        with fresh_telemetry():
            local = sharded_census_map(graph, roots, config, pset)
        try:
            with fresh_telemetry() as telemetry:
                remote = sharded_census_map(
                    graph, roots, config, pset,
                    executor="remote", workers=[str(box["endpoint"])],
                )
                counters = telemetry.as_dict()["counters"]
        finally:
            try:
                with NetClient(box["endpoint"], retry=RetryPolicy(retries=0)) as c:
                    c.call({"op": "shutdown"}, timeout=1.0, retry=False)
            except NetError:
                pass
            thread.join(timeout=10)
        assert remote == local
        assert counters.get("net/shards_shipped", 0) == 0

    def test_remote_requires_worker_endpoints(self):
        graph = _random_graph(seed=1, n=12)
        config = CensusConfig(max_edges=3)
        pset = partition_graph(graph, PartitionConfig(num_partitions=2), config)
        from repro.exceptions import PartitionError

        with fresh_telemetry():
            with pytest.raises(PartitionError):
                sharded_census_map(
                    graph, [0], config, pset, executor="remote"
                )
        with pytest.raises(ValueError):
            sharded_census_map(
                graph, [0], config, pset, executor="teleport"
            )
