"""Engine parity: the fast census must match the reference bit-for-bit.

``subgraph_census`` ships two implementations — the straightforward
reference engine (`_CensusRun`) and the incremental fast engine
(`_FastCensusRun`).  The fast engine's whole contract is that it is an
*optimisation*, not an approximation, so these tests assert exact
``Counter`` equality on randomized graphs across every configuration
axis: key mode, root masking, the grouping heuristic, the ``d_max`` hub
cut-off, and ``e_max`` from 1 to 5.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.census import CensusConfig, CensusError, subgraph_census
from repro.core.graph import HeteroGraph

KEY_MODES = ("canonical", "string", "hash")


def random_hetero_graph(seed: int) -> HeteroGraph:
    """A small random labelled graph; density varies with the seed."""
    rng = random.Random(seed)
    num_labels = rng.randint(2, 4)
    labels = "ABCD"[:num_labels]
    n = rng.randint(5, 13)
    nodes = {f"n{i}": rng.choice(labels) for i in range(n)}
    p = rng.uniform(0.15, 0.45)
    edges = [
        (f"n{i}", f"n{j}")
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    if not edges:
        edges = [("n0", "n1")]
    return HeteroGraph.from_edges(nodes, edges)


def censuses_match(graph: HeteroGraph, root: int, config: CensusConfig) -> bool:
    fast = subgraph_census(graph, root, config, engine="fast")
    reference = subgraph_census(graph, root, config, engine="reference")
    return fast == reference


class TestEngineParity:
    @pytest.mark.parametrize("key", KEY_MODES)
    @pytest.mark.parametrize("emax", [1, 2, 3, 4, 5])
    def test_randomized_parity(self, key, emax):
        """Random graphs, random roots, random flag combinations."""
        for seed in range(6):
            rng = random.Random(f"{seed}-{key}-{emax}")
            graph = random_hetero_graph(seed * 7919 + emax)
            config = CensusConfig(
                max_edges=emax,
                max_degree=rng.choice([None, rng.randint(2, 6)]),
                mask_start_label=rng.random() < 0.5,
                key=key,
                group_by_label=rng.random() < 0.5,
                include_trivial=rng.random() < 0.5,
            )
            roots = rng.sample(range(graph.num_nodes), min(3, graph.num_nodes))
            for root in roots:
                assert censuses_match(graph, root, config), (
                    f"engine mismatch: seed={seed} root={root} config={config}"
                )

    @pytest.mark.parametrize("key", KEY_MODES)
    @pytest.mark.parametrize("mask", [False, True])
    @pytest.mark.parametrize("group", [False, True])
    @pytest.mark.parametrize("dmax", [None, 2])
    def test_flag_grid_on_fixture(self, publication_graph, key, mask, group, dmax):
        """The full flag grid on a deterministic fixture, every root."""
        config = CensusConfig(
            max_edges=3,
            max_degree=dmax,
            mask_start_label=mask,
            key=key,
            group_by_label=group,
        )
        for root in range(publication_graph.num_nodes):
            assert censuses_match(publication_graph, root, config)

    def test_cap_raises_in_both_engines(self, dense_two_label_graph):
        config = CensusConfig(max_edges=3, max_subgraphs=2)
        for engine in ("fast", "reference"):
            with pytest.raises(CensusError, match="max_subgraphs"):
                subgraph_census(dense_two_label_graph, 0, config, engine=engine)

    def test_unknown_engine_rejected(self, triangle_graph):
        with pytest.raises(CensusError, match="engine"):
            subgraph_census(triangle_graph, 0, CensusConfig(), engine="turbo")


class TestKeyTypes:
    """Census keys must never leak numpy scalar types (they pickle ~5x
    larger than plain ints and compare non-portably across platforms)."""

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_hash_keys_are_plain_ints(self, publication_graph, engine):
        config = CensusConfig(max_edges=3, key="hash")
        root = np.int64(3)  # numpy scalar root, as node lists often carry
        counts = subgraph_census(publication_graph, root, config, engine=engine)
        assert counts
        for key in counts:
            assert type(key) is int

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    @pytest.mark.parametrize("mask", [False, True])
    def test_canonical_entries_are_plain_ints(
        self, publication_graph, engine, mask
    ):
        config = CensusConfig(max_edges=3, mask_start_label=mask)
        counts = subgraph_census(
            publication_graph, np.int64(0), config, engine=engine
        )
        assert counts
        for code in counts:
            for row in code:
                for entry in row:
                    assert type(entry) is int

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_counts_are_plain_ints(self, publication_graph, engine):
        config = CensusConfig(max_edges=3)
        counts = subgraph_census(publication_graph, 0, config, engine=engine)
        for value in counts.values():
            assert type(value) is int
