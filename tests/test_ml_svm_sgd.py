"""Tests for the omitted-baseline models: linear SVMs and SGD."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.sgd import SGDClassifier, SGDRegressor
from repro.ml.svm import LinearSVC, LinearSVR


def _linear_data(n=300, p=4, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    w = rng.normal(size=p)
    y = X @ w + 1.5 + noise * rng.normal(size=n)
    return X, y, w


def _blobs(n=120, gap=3.0, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (n, 3)), rng.normal(gap, 1, (n, 3))])
    y = np.array(["neg"] * n + ["pos"] * n)
    return X, y


class TestLinearSVR:
    def test_fits_linear_signal(self):
        X, y, _ = _linear_data()
        model = LinearSVR(C=10.0, epsilon=0.01).fit(X[:200], y[:200])
        assert model.score(X[200:], y[200:]) > 0.95

    def test_epsilon_tube_ignores_small_residuals(self):
        """With a huge epsilon the loss is flat: weights stay near zero."""
        X, y, _ = _linear_data()
        model = LinearSVR(C=1.0, epsilon=100.0).fit(X, y)
        assert np.linalg.norm(model.coef_) < 0.1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LinearSVR(C=0.0)
        with pytest.raises(ValueError):
            LinearSVR(epsilon=-1.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LinearSVR().predict(np.ones((2, 2)))

    def test_feature_mismatch(self):
        X, y, _ = _linear_data()
        model = LinearSVR().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.ones((2, 9)))


class TestLinearSVC:
    def test_separates_blobs(self):
        X, y = _blobs()
        model = LinearSVC(C=1.0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_decision_sign_matches_prediction(self):
        X, y = _blobs()
        model = LinearSVC().fit(X, y)
        scores = model.decision_function(X)
        assert np.array_equal(model.predict(X) == "pos", scores >= 0)

    def test_regularisation_shrinks(self):
        X, y = _blobs()
        loose = LinearSVC(C=100.0).fit(X, y)
        tight = LinearSVC(C=0.001).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_multiclass_rejected(self):
        with pytest.raises(ValueError):
            LinearSVC().fit(np.ones((6, 2)), [0, 1, 2, 0, 1, 2])


class TestSGDRegressor:
    def test_converges_on_linear_signal(self):
        X, y, _ = _linear_data()
        model = SGDRegressor(max_iter=100, learning_rate=0.05, random_state=0)
        model.fit(X[:200], y[:200])
        assert model.score(X[200:], y[200:]) > 0.9

    def test_deterministic_with_seed(self):
        X, y, _ = _linear_data(n=100)
        a = SGDRegressor(random_state=3).fit(X, y)
        b = SGDRegressor(random_state=3).fit(X, y)
        assert np.array_equal(a.coef_, b.coef_)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SGDRegressor(alpha=-1.0)
        with pytest.raises(ValueError):
            SGDRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGDRegressor(max_iter=0)

    def test_strong_penalty_shrinks(self):
        X, y, _ = _linear_data()
        weak = SGDRegressor(alpha=0.0, random_state=0).fit(X, y)
        strong = SGDRegressor(alpha=10.0, random_state=0).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)


class TestSGDClassifier:
    def test_separates_blobs(self):
        X, y = _blobs()
        model = SGDClassifier(max_iter=100, learning_rate=0.1, random_state=0)
        model.fit(X, y)
        assert model.score(X, y) > 0.9

    def test_proba_valid(self):
        X, y = _blobs()
        model = SGDClassifier(random_state=0).fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_multiclass_rejected(self):
        with pytest.raises(ValueError):
            SGDClassifier().fit(np.ones((4, 2)), [0, 1, 2, 0])
