"""Property-based tests (hypothesis) for the core invariants.

Random labelled graphs are generated as (labels, edges) pairs; the
strategies keep sizes small so the brute-force reference census stays fast.
"""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.census import CensusConfig, census_total, subgraph_census
from repro.core.encoding import (
    code_num_edges,
    code_num_nodes,
    code_to_string,
    encode_subgraph,
    string_to_code,
    validate_code,
)
from repro.core.graph import HeteroGraph
from repro.core.hashing import RollingSubgraphHash
from repro.core.isomorphism import SmallGraph, are_isomorphic
from repro.core.labels import LabelSet
from repro.ml.metrics import macro_f1, ndcg_at
from tests.conftest import brute_force_census


@st.composite
def small_labelled_graphs(draw, max_nodes=6, num_labels=3, connected=False):
    """(labels, edges) with optional connectivity via a random spanning tree."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = tuple(
        draw(st.integers(min_value=0, max_value=num_labels - 1)) for _ in range(n)
    )
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if connected and n > 1:
        tree_edges = []
        for j in range(1, n):
            parent = draw(st.integers(min_value=0, max_value=j - 1))
            tree_edges.append((parent, j))
        extra = draw(st.lists(st.sampled_from(possible), unique=True, max_size=4))
        edges = sorted(set(tree_edges) | set(extra))
    else:
        edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=8)) if possible else []
    return labels, tuple(edges)


def _graph_from(labels, edges) -> HeteroGraph:
    node_labels = {f"n{i}": str(label) for i, label in enumerate(labels)}
    named = [(f"n{u}", f"n{v}") for u, v in edges]
    labelset = LabelSet(tuple(str(i) for i in range(max(labels) + 1)))
    return HeteroGraph.from_edges(node_labels, named, labelset=labelset)


class TestEncodingProperties:
    @given(small_labelled_graphs())
    @settings(max_examples=150, deadline=None)
    def test_encoding_invariant_under_permutation(self, graph):
        labels, edges = graph
        n = len(labels)
        rng = np.random.default_rng(sum(labels) + len(edges))
        perm = rng.permutation(n)
        inverse = np.argsort(perm)
        permuted_labels = [labels[int(perm[i])] for i in range(n)]
        permuted_edges = [(int(inverse[u]), int(inverse[v])) for u, v in edges]
        a = encode_subgraph(labels, edges, 3)
        b = encode_subgraph(permuted_labels, permuted_edges, 3)
        assert a == b

    @given(small_labelled_graphs())
    @settings(max_examples=150, deadline=None)
    def test_encoding_counts_nodes_and_edges(self, graph):
        labels, edges = graph
        code = encode_subgraph(labels, edges, 3)
        assert code_num_nodes(code) == len(labels)
        assert code_num_edges(code) == len(edges)

    @given(small_labelled_graphs())
    @settings(max_examples=150, deadline=None)
    def test_encoding_passes_validation(self, graph):
        labels, edges = graph
        code = encode_subgraph(labels, edges, 3)
        validate_code(code, 3)

    @given(small_labelled_graphs())
    @settings(max_examples=150, deadline=None)
    def test_string_roundtrip(self, graph):
        labels, edges = graph
        labelset = LabelSet(("a", "b", "c"))
        code = encode_subgraph(labels, edges, 3)
        assert string_to_code(code_to_string(code, labelset), labelset) == code

    @given(small_labelled_graphs(max_nodes=5), small_labelled_graphs(max_nodes=5))
    @settings(max_examples=100, deadline=None)
    def test_isomorphic_implies_equal_codes(self, g1, g2):
        """Soundness direction of the pseudo-canonical encoding: isomorphic
        graphs always share a code (collisions only go the other way)."""
        a = SmallGraph(g1[0], g1[1])
        b = SmallGraph(g2[0], g2[1])
        if are_isomorphic(a, b):
            assert a.encode(3) == b.encode(3)


class TestHashProperties:
    @given(small_labelled_graphs())
    @settings(max_examples=100, deadline=None)
    def test_hash_consistent_between_formulations(self, graph):
        labels, edges = graph
        hasher = RollingSubgraphHash(3)
        code = encode_subgraph(labels, edges, 3)
        assert hasher.hash_edges(labels, edges) == hasher.hash_code(code)

    @given(small_labelled_graphs(connected=True))
    @settings(max_examples=100, deadline=None)
    def test_incremental_removal_returns_to_start(self, graph):
        labels, edges = graph
        hasher = RollingSubgraphHash(3)
        value = 0
        for u, v in edges:
            value = hasher.add_edge(value, labels[u], labels[v])
        for u, v in reversed(edges):
            value = hasher.remove_edge(value, labels[u], labels[v])
        assert value == 0


class TestCensusProperties:
    @given(small_labelled_graphs(max_nodes=6, connected=True))
    @settings(max_examples=60, deadline=None)
    def test_census_matches_brute_force(self, graph):
        labels, edges = graph
        hetero = _graph_from(labels, edges)
        config = CensusConfig(max_edges=3)
        expected = brute_force_census(hetero, 0, 3)
        assert subgraph_census(hetero, 0, config) == expected

    @given(small_labelled_graphs(max_nodes=6, connected=True))
    @settings(max_examples=40, deadline=None)
    def test_census_monotone_in_emax(self, graph):
        labels, edges = graph
        hetero = _graph_from(labels, edges)
        small = subgraph_census(hetero, 0, CensusConfig(max_edges=2))
        large = subgraph_census(hetero, 0, CensusConfig(max_edges=4))
        assert census_total(large) >= census_total(small)
        for key, count in small.items():
            assert large[key] == count  # adding size never changes small counts

    @given(small_labelled_graphs(max_nodes=6, connected=True))
    @settings(max_examples=40, deadline=None)
    def test_census_key_modes_consistent_totals(self, graph):
        labels, edges = graph
        hetero = _graph_from(labels, edges)
        canonical = subgraph_census(hetero, 0, CensusConfig(max_edges=3))
        hashed = subgraph_census(hetero, 0, CensusConfig(max_edges=3, key="hash"))
        strings = subgraph_census(hetero, 0, CensusConfig(max_edges=3, key="string"))
        assert census_total(canonical) == census_total(hashed) == census_total(strings)
        assert len(strings) == len(canonical)

    @given(small_labelled_graphs(max_nodes=6, connected=True))
    @settings(max_examples=40, deadline=None)
    def test_grouping_heuristic_no_effect_on_counts(self, graph):
        labels, edges = graph
        hetero = _graph_from(labels, edges)
        on = subgraph_census(hetero, 0, CensusConfig(max_edges=3, group_by_label=True))
        off = subgraph_census(hetero, 0, CensusConfig(max_edges=3, group_by_label=False))
        assert on == off


class TestMetricProperties:
    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=30),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_ndcg_bounded_and_perfect_on_truth(self, relevances, seed):
        rel = np.asarray(relevances)
        rng = np.random.default_rng(seed)
        scores = rng.random(rel.size)
        value = ndcg_at(rel, scores, n=10)
        assert 0.0 <= value <= 1.0
        assert ndcg_at(rel, rel, n=10) == 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_macro_f1_bounded_and_perfect_on_truth(self, y, seed):
        y_true = np.asarray(y)
        rng = np.random.default_rng(seed)
        y_pred = rng.permutation(y_true)
        value = macro_f1(y_true, y_pred)
        assert 0.0 <= value <= 1.0
        assert macro_f1(y_true, y_true) == 1.0
