"""Unit tests for feature spaces and the subgraph feature extractor."""

import numpy as np
import pytest

from repro.core.census import CensusConfig, subgraph_census
from repro.core.features import FeatureSpace, SubgraphFeatureExtractor
from repro.exceptions import FeatureError


class TestFeatureSpace:
    def test_add_assigns_columns_in_order(self):
        space = FeatureSpace()
        assert space.add("a") == 0
        assert space.add("b") == 1
        assert space.add("a") == 0  # idempotent
        assert len(space) == 2

    def test_fit_absorbs_counter_keys(self):
        from collections import Counter

        space = FeatureSpace().fit([Counter({"x": 1}), Counter({"y": 2, "x": 1})])
        assert set(space.keys) == {"x", "y"}

    def test_index_unknown_raises(self):
        space = FeatureSpace(["a"])
        with pytest.raises(FeatureError):
            space.index("b")

    def test_key_at_roundtrip(self):
        space = FeatureSpace(["a", "b"])
        assert space.key_at(space.index("b")) == "b"

    def test_key_at_out_of_range(self):
        with pytest.raises(FeatureError):
            FeatureSpace(["a"]).key_at(5)

    def test_contains(self):
        space = FeatureSpace(["a"])
        assert "a" in space
        assert "b" not in space

    def test_to_matrix_aligns_and_drops_unknown(self):
        from collections import Counter

        space = FeatureSpace(["a", "b"])
        matrix = space.to_matrix([Counter({"a": 3}), Counter({"b": 1, "zzz": 9})])
        assert matrix.shape == (2, 2)
        assert matrix[0].tolist() == [3.0, 0.0]
        assert matrix[1].tolist() == [0.0, 1.0]

    def test_to_matrix_empty_space_raises(self):
        from collections import Counter

        with pytest.raises(FeatureError):
            FeatureSpace().to_matrix([Counter()])


class TestExtractor:
    def test_fit_transform_counts_match_census(self, publication_graph):
        config = CensusConfig(max_edges=3)
        extractor = SubgraphFeatureExtractor(config)
        nodes = [0, 3, 5]
        features = extractor.fit_transform(publication_graph, nodes)
        assert features.matrix.shape[0] == 3
        assert features.nodes == (0, 3, 5)
        for row, node in enumerate(nodes):
            reference = subgraph_census(publication_graph, node, config)
            total = features.matrix[row].sum()
            assert total == sum(reference.values())

    def test_transform_aligns_to_existing_space(self, publication_graph):
        config = CensusConfig(max_edges=3)
        extractor = SubgraphFeatureExtractor(config)
        train = extractor.fit_transform(publication_graph, [0, 1])
        test = extractor.transform(publication_graph, [2], train.space)
        assert test.matrix.shape == (1, train.num_features)

    def test_deterministic_columns(self, publication_graph):
        config = CensusConfig(max_edges=3)
        a = SubgraphFeatureExtractor(config).fit_transform(publication_graph, [0, 1])
        b = SubgraphFeatureExtractor(config).fit_transform(publication_graph, [0, 1])
        assert a.space.keys == b.space.keys
        assert np.array_equal(a.matrix, b.matrix)

    def test_isolated_nodes_raise_on_empty_vocabulary(self):
        from repro.core.graph import HeteroGraph

        graph = HeteroGraph.from_edges({"a": "A", "b": "B"}, [])
        extractor = SubgraphFeatureExtractor(CensusConfig(max_edges=2))
        with pytest.raises(FeatureError, match="isolated"):
            extractor.fit_transform(graph, [0, 1])

    def test_bad_n_jobs(self):
        with pytest.raises(FeatureError):
            SubgraphFeatureExtractor(n_jobs=0)

    def test_parallel_matches_serial(self, publication_graph):
        config = CensusConfig(max_edges=3)
        serial = SubgraphFeatureExtractor(config, n_jobs=1).fit_transform(
            publication_graph, list(range(publication_graph.num_nodes))
        )
        parallel = SubgraphFeatureExtractor(config, n_jobs=2).fit_transform(
            publication_graph, list(range(publication_graph.num_nodes))
        )
        assert serial.space.keys == parallel.space.keys
        assert np.array_equal(serial.matrix, parallel.matrix)

    def test_masked_extraction_hides_root_label(self, publication_graph):
        """With masking, two same-neighbourhood nodes of different labels
        produce identical features."""
        config = CensusConfig(max_edges=1, mask_start_label=True)
        extractor = SubgraphFeatureExtractor(config)
        g = publication_graph
        # a1 and a2 have identical neighbourhoods (i1, p1).
        features = extractor.fit_transform(g, [g.index("a1"), g.index("a2")])
        assert np.array_equal(features.matrix[0], features.matrix[1])


class TestCensusManyScheduling:
    def test_empty_nodes_returns_empty(self, publication_graph):
        extractor = SubgraphFeatureExtractor(CensusConfig(max_edges=3), n_jobs=4)
        assert extractor.census_many(publication_graph, []) == []

    def test_small_batch_never_spawns_pool(self, publication_graph, monkeypatch):
        """Fewer pending roots than workers must run in-process."""
        import repro.core.features as features_module

        def boom(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("ProcessPoolExecutor should not be created")

        monkeypatch.setattr(features_module, "ProcessPoolExecutor", boom)
        extractor = SubgraphFeatureExtractor(CensusConfig(max_edges=3), n_jobs=8)
        results = extractor.census_many(publication_graph, [0, 1])
        expected = [
            subgraph_census(publication_graph, n, extractor.config) for n in (0, 1)
        ]
        assert results == expected

    def test_parallel_results_keep_input_order(self, publication_graph):
        """Degree-sorted scheduling must not leak into result order."""
        config = CensusConfig(max_edges=3)
        # Ascending-degree order: the scheduler reverses it internally.
        nodes = sorted(
            range(publication_graph.num_nodes),
            key=lambda n: publication_graph.degree(n),
        )
        parallel = SubgraphFeatureExtractor(config, n_jobs=2).census_many(
            publication_graph, nodes
        )
        serial = [subgraph_census(publication_graph, n, config) for n in nodes]
        assert parallel == serial

    def test_duplicate_nodes_each_get_a_row(self, publication_graph):
        config = CensusConfig(max_edges=2)
        results = SubgraphFeatureExtractor(config).census_many(
            publication_graph, [3, 3, 0]
        )
        assert results[0] == results[1]
        assert results[0] == subgraph_census(publication_graph, 3, config)
        assert results[2] == subgraph_census(publication_graph, 0, config)


class TestCensusManyDedup:
    """Duplicate roots must be censused once and fanned out."""

    def _counting_census(self, monkeypatch):
        import repro.core.features as features_module

        calls = []
        real = features_module.subgraph_census

        def counting(graph, node, config, **kwargs):
            calls.append(int(node))
            return real(graph, node, config, **kwargs)

        monkeypatch.setattr(features_module, "subgraph_census", counting)
        return calls

    def test_duplicates_computed_once(self, publication_graph, monkeypatch):
        calls = self._counting_census(monkeypatch)
        config = CensusConfig(max_edges=2)
        nodes = [0, 0, 2, 0]
        results = SubgraphFeatureExtractor(config).census_many(
            publication_graph, nodes
        )
        assert sorted(calls) == [0, 2]  # one census per unique root
        expected = subgraph_census(publication_graph, 0, config)
        assert results[0] == results[1] == results[3] == expected
        assert results[2] == subgraph_census(publication_graph, 2, config)

    def test_fanned_out_rows_are_independent(self, publication_graph):
        config = CensusConfig(max_edges=2)
        results = SubgraphFeatureExtractor(config).census_many(
            publication_graph, [3, 3]
        )
        results[0]["poisoned"] = 99
        assert "poisoned" not in results[1]

    def test_duplicates_hit_cache_not_census(self, publication_graph, monkeypatch):
        """With a cache, duplicates must not turn into extra misses."""
        from repro.core.cache import CensusCache

        calls = self._counting_census(monkeypatch)
        config = CensusConfig(max_edges=2)
        cache = CensusCache()
        extractor = SubgraphFeatureExtractor(config, cache=cache)
        extractor.census_many(publication_graph, [0, 0, 2, 0])
        assert sorted(calls) == [0, 2]
        assert cache.misses == 2  # one per unique root, not per occurrence
        assert cache.hits == 0

    def test_dedup_savings_counted(self, publication_graph):
        from repro.obs.telemetry import fresh_telemetry

        config = CensusConfig(max_edges=2)
        with fresh_telemetry() as telemetry:
            SubgraphFeatureExtractor(config).census_many(
                publication_graph, [0, 0, 2, 0]
            )
        assert telemetry.counters["census/requested"] == 4
        assert telemetry.counters["census/dedup_saved"] == 2


class TestCensusManyTelemetry:
    """Worker-side stats must merge into the parent registry."""

    def _run(self, graph, n_jobs):
        from repro.obs.telemetry import fresh_telemetry

        nodes = list(range(graph.num_nodes))
        with fresh_telemetry() as telemetry:
            results = SubgraphFeatureExtractor(
                CensusConfig(max_edges=3), n_jobs=n_jobs
            ).census_many(graph, nodes)
        return results, telemetry

    def test_parallel_stats_match_serial(self, publication_graph):
        serial_results, serial = self._run(publication_graph, n_jobs=1)
        parallel_results, parallel = self._run(publication_graph, n_jobs=2)
        assert parallel_results == serial_results
        # Same roots censused, whether in-process or shipped back from
        # pool workers as snapshots.
        assert (
            parallel.counters["census/requested"]
            == serial.counters["census/requested"]
        )
        assert (
            parallel.timers["census/root"].count
            == serial.timers["census/root"].count
        )
        assert parallel.timers["census/chunk"].count >= 1

    def test_cache_hits_counted(self, publication_graph):
        from repro.core.cache import CensusCache
        from repro.obs.telemetry import fresh_telemetry

        config = CensusConfig(max_edges=2)
        cache = CensusCache()
        extractor = SubgraphFeatureExtractor(config, cache=cache)
        with fresh_telemetry() as telemetry:
            extractor.census_many(publication_graph, [0, 1])
            extractor.census_many(publication_graph, [0, 1])
        assert telemetry.counters["census/cache_misses"] == 2
        assert telemetry.counters["census/cache_hits"] == 2


class TestFeatureSpaceUtilities:
    def test_merged_preserves_existing_columns(self):
        a = FeatureSpace(["x", "y"])
        b = FeatureSpace(["y", "z"])
        merged = a.merged(b)
        assert merged.keys == ("x", "y", "z")
        assert merged.index("x") == a.index("x")

    def test_prune_drops_rare_codes(self):
        from collections import Counter

        space = FeatureSpace(["common", "rare"])
        censuses = [Counter({"common": 1}), Counter({"common": 2, "rare": 1})]
        pruned = space.prune(censuses, min_nodes=2)
        assert pruned.keys == ("common",)

    def test_prune_min_nodes_one_keeps_observed(self):
        from collections import Counter

        space = FeatureSpace(["a", "b", "never"])
        censuses = [Counter({"a": 1}), Counter({"b": 1})]
        pruned = space.prune(censuses, min_nodes=1)
        assert set(pruned.keys) == {"a", "b"}

    def test_prune_validation(self):
        with pytest.raises(FeatureError):
            FeatureSpace(["a"]).prune([], min_nodes=0)


class TestSparseLayout:
    """``layout="sparse"`` is a bit-exact reformulation of the dense path."""

    def _censuses(self):
        from collections import Counter

        return [
            Counter({"a": 3, "c": 1}),
            Counter(),
            Counter({"b": 2, "unseen": 9}),
            Counter({"a": 1, "b": 1, "c": 1}),
        ]

    def test_to_matrix_layouts_agree_exactly(self):
        space = FeatureSpace(["a", "b", "c"])
        censuses = self._censuses()
        dense = space.to_matrix(censuses)
        sparse = space.to_matrix(censuses, layout="sparse")
        assert np.array_equal(sparse.toarray(), dense)

    def test_to_matrix_rejects_unknown_layout(self):
        with pytest.raises(FeatureError):
            FeatureSpace(["a"]).to_matrix([], layout="csc")

    def test_prune_from_csr_matches_counters(self):
        space = FeatureSpace(["a", "b", "c"])
        censuses = self._censuses()
        from_counters = space.prune(censuses, min_nodes=2)
        from_csr = space.prune(
            space.to_matrix(censuses, layout="sparse"), min_nodes=2
        )
        assert from_csr.keys == from_counters.keys

    def test_prune_ignores_unindexed_keys(self):
        """Keys outside the space's vocabulary (e.g. codes from masked
        censuses) must not count toward support — and must not survive."""
        from collections import Counter

        space = FeatureSpace(["a"])
        censuses = [Counter({"a": 1, "ghost": 5}), Counter({"ghost": 2})]
        pruned = space.prune(censuses, min_nodes=1)
        assert pruned.keys == ("a",)

    def test_prune_csr_column_mismatch(self):
        from repro.core.sparse import CSRMatrix

        space = FeatureSpace(["a", "b"])
        wrong = CSRMatrix.from_dense(np.zeros((2, 3)))
        with pytest.raises(FeatureError):
            space.prune(wrong)

    def test_extractor_sparse_layout_matches_dense(self, publication_graph):
        config = CensusConfig(max_edges=3)
        nodes = list(range(4))
        dense = SubgraphFeatureExtractor(config).fit_transform(
            publication_graph, nodes
        )
        sparse = SubgraphFeatureExtractor(config).fit_transform(
            publication_graph, nodes, layout="sparse"
        )
        assert np.array_equal(sparse.matrix.toarray(), dense.matrix)
