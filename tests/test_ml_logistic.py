"""Unit tests for logistic regression and the one-vs-rest wrapper."""

import numpy as np
import pytest

from repro.ml.logistic import (
    LogisticRegression,
    OneVsRestLogisticRegression,
    tune_regularization,
    _sigmoid,
)


def _two_blobs(n=100, gap=3.0, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (n, 2)), rng.normal(gap, 1, (n, 2))])
    y = np.array([0] * n + [1] * n)
    return X, y


class TestSigmoid:
    def test_midpoint(self):
        assert _sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_stable(self):
        values = _sigmoid(np.array([-1000.0, 1000.0]))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == pytest.approx(1.0, abs=1e-12)

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        assert np.allclose(_sigmoid(z) + _sigmoid(-z), 1.0)


class TestBinary:
    def test_separates_blobs(self):
        X, y = _two_blobs()
        model = LogisticRegression(C=1.0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_probabilities_valid(self):
        X, y = _two_blobs()
        model = LogisticRegression().fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_stronger_regularisation_shrinks_weights(self):
        X, y = _two_blobs()
        loose = LogisticRegression(C=100.0).fit(X, y)
        tight = LogisticRegression(C=0.01).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_string_classes(self):
        X, y = _two_blobs()
        labels = np.where(y == 1, "pos", "neg")
        model = LogisticRegression().fit(X, labels)
        assert set(model.predict(X)) <= {"pos", "neg"}

    def test_multiclass_input_rejected(self):
        X = np.ones((6, 2))
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(X, [0, 1, 2, 0, 1, 2])

    def test_bad_c(self):
        with pytest.raises(ValueError):
            LogisticRegression(C=0.0)

    def test_decision_function_sign_matches_prediction(self):
        X, y = _two_blobs()
        model = LogisticRegression().fit(X, y)
        scores = model.decision_function(X)
        assert np.array_equal(model.predict(X) == model.classes_[1], scores >= 0)


class TestOneVsRest:
    def _three_blobs(self, seed=0):
        rng = np.random.default_rng(seed)
        X = np.vstack([rng.normal(loc, 1, (70, 3)) for loc in (0, 3, 6)])
        y = np.repeat(["x", "y", "z"], 70)
        return X, y

    def test_separates_three_classes(self):
        X, y = self._three_blobs()
        model = OneVsRestLogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_one_estimator_per_class(self):
        X, y = self._three_blobs()
        model = OneVsRestLogisticRegression().fit(X, y)
        assert len(model.estimators_) == 3

    def test_proba_normalised(self):
        X, y = self._three_blobs()
        model = OneVsRestLogisticRegression().fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_predicts_highest_score_label(self):
        """The Section 4.3.3 rule: pick the label with the top OvR score."""
        X, y = self._three_blobs()
        model = OneVsRestLogisticRegression().fit(X, y)
        scores = np.column_stack(
            [est.predict_proba(X)[:, 1] for est in model.estimators_]
        )
        assert np.array_equal(
            model.predict(X), model.classes_[np.argmax(scores, axis=1)]
        )

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            OneVsRestLogisticRegression().fit(np.ones((4, 2)), ["a"] * 4)


class TestTuning:
    def test_returns_fitted_model(self):
        X, y = _two_blobs(n=60)
        model = tune_regularization(X, y, grid=(0.1, 1.0), rng=0)
        assert model.score(X, y) > 0.9

    def test_picks_from_grid(self):
        X, y = _two_blobs(n=60)
        model = tune_regularization(X, y, grid=(0.5,), rng=0)
        assert model.C == 0.5
