"""Socket-level tests for the serving daemon.

Each test runs a real :class:`ServeDaemon` on a unix socket inside one
``asyncio.run()`` event loop (no pytest-asyncio in the toolchain) and
speaks the newline-framed JSON protocol over
``asyncio.open_unix_connection`` — exercising the full path a production
client sees: framing, typed errors, shedding, timeouts, and shutdown.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time

import numpy as np
import pytest

from repro.net import open_connection
from repro.obs import fresh_telemetry
from repro.serve import FeatureService, ServeConfig, ServeDaemon
from repro.serve.daemon import MAX_LINE_BYTES
from repro.serve.protocol import ERROR_CODES, decode_request, require
from repro.serve.protocol import ServeError as _ServeError


def _graph(seed: int = 0):
    from repro.datasets.synthetic import affinity_graph

    return affinity_graph(
        label_sizes={"a": 12, "b": 10, "c": 8},
        affinity={("a", "b"): 1.0, ("b", "c"): 0.7, ("a", "c"): 0.3},
        mean_degree=3.0,
        rng=np.random.default_rng(seed),
    )


def _service(**kwargs) -> FeatureService:
    service = FeatureService(_graph(), ServeConfig(emax=3, **kwargs))
    service.warm()
    return service


async def _send(reader, writer, payload: dict) -> dict:
    writer.write((json.dumps(payload) + "\n").encode("utf-8"))
    await writer.drain()
    line = await reader.readline()
    assert line, "daemon closed the connection unexpectedly"
    return json.loads(line)


async def _with_daemon(daemon: ServeDaemon, scenario) -> None:
    """Run ``scenario(daemon)`` against a live daemon, then stop it."""
    ready = asyncio.Event()
    task = asyncio.create_task(daemon.run(ready))
    await ready.wait()
    try:
        await scenario()
    finally:
        daemon.stop()
        await task


def _run(daemon: ServeDaemon, scenario) -> None:
    asyncio.run(_with_daemon(daemon, scenario))


class TestProtocolRoundTrips:
    def test_read_ops(self, tmp_path):
        service = _service()
        node = service.graph.node_ids[0]
        daemon = ServeDaemon(service, tmp_path / "s.sock")

        async def scenario():
            reader, writer = await asyncio.open_unix_connection(
                str(daemon.socket_path)
            )
            response = await _send(reader, writer, {"id": 1, "op": "ping"})
            assert response == {"id": 1, "ok": True, "result": {"pong": True}}

            response = await _send(
                reader, writer, {"id": 2, "op": "features", "node": node}
            )
            assert response["ok"]
            result = response["result"]
            assert result["node"] == str(node)
            assert result["total"] == sum(result["counts"].values())

            response = await _send(
                reader, writer, {"id": 3, "op": "rank", "node": node, "k": 3}
            )
            assert response["ok"]
            assert len(response["result"]["top"]) == 3
            scores = [item["score"] for item in response["result"]["top"]]
            assert scores == sorted(scores, reverse=True)

            response = await _send(
                reader, writer, {"id": 4, "op": "label", "node": node}
            )
            assert response["ok"]
            assert response["result"]["predicted"] in service.graph.labelset.names

            response = await _send(reader, writer, {"id": 5, "op": "stats"})
            assert response["ok"]
            assert response["result"]["graph"]["nodes"] == service.graph.num_nodes
            writer.close()

        with fresh_telemetry():
            _run(daemon, scenario)
        assert daemon.requests == 5

    def test_write_ops_round_trip(self, tmp_path):
        service = _service()
        graph = service.graph
        ids = graph.node_ids
        edges = {(u, v) for u, v in graph.edges()}
        u, v = next(
            (u, v)
            for u in range(graph.num_nodes)
            for v in range(u + 1, graph.num_nodes)
            if (u, v) not in edges
        )
        before = graph.num_edges
        daemon = ServeDaemon(service, tmp_path / "s.sock")

        async def scenario():
            reader, writer = await asyncio.open_unix_connection(
                str(daemon.socket_path)
            )
            response = await _send(
                reader, writer,
                {"id": 1, "op": "add_edge", "u": ids[u], "v": ids[v]},
            )
            assert response["ok"]
            assert response["result"]["num_edges"] == before + 1
            assert response["result"]["repaired_roots"] > 0
            response = await _send(
                reader, writer,
                {"id": 2, "op": "remove_edge", "u": ids[u], "v": ids[v]},
            )
            assert response["ok"]
            assert response["result"]["num_edges"] == before
            writer.close()

        with fresh_telemetry():
            _run(daemon, scenario)

    def test_typed_errors(self, tmp_path):
        service = _service()
        node = service.graph.node_ids[0]
        daemon = ServeDaemon(service, tmp_path / "s.sock")

        async def scenario():
            reader, writer = await asyncio.open_unix_connection(
                str(daemon.socket_path)
            )
            cases = [
                (b"not json\n", "bad_request"),
                (b'["a", "list"]\n', "bad_request"),
                (b'{"op": "no_such_op"}\n', "unknown_op"),
                (b'{"op": "features"}\n', "bad_request"),  # missing node
                (b'{"op": "features", "node": "missing"}\n', "unknown_node"),
                (b'{"op": "rank", "node": "%s", "k": 0}\n'
                 % str(node).encode(), "bad_request"),
                (b'{"op": "add_edge", "u": "%s", "v": "%s"}\n'
                 % (str(node).encode(), str(node).encode()), "graph_error"),
            ]
            for payload, expected_code in cases:
                writer.write(payload)
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == expected_code, payload
                assert expected_code in ERROR_CODES
            writer.close()

        with fresh_telemetry():
            _run(daemon, scenario)

    def test_oversized_line_drops_connection(self, tmp_path):
        daemon = ServeDaemon(_service(), tmp_path / "s.sock")

        async def scenario():
            reader, writer = await asyncio.open_unix_connection(
                str(daemon.socket_path)
            )
            writer.write(b'{"op": "ping", "pad": "' + b"x" * MAX_LINE_BYTES)
            try:
                await writer.drain()
                line = await reader.readline()
            except (ConnectionResetError, BrokenPipeError):
                line = b""  # the daemon tore the connection down mid-write
            assert line == b""  # dropped rather than buffered without bound
            writer.close()

        with fresh_telemetry():
            _run(daemon, scenario)


class TestDegradation:
    def test_shedding_under_load(self, tmp_path):
        service = _service()
        inner = service.handle

        def slow_handle(request):
            if request["op"] == "ping":
                time.sleep(0.4)
            return inner(request)

        service.handle = slow_handle
        daemon = ServeDaemon(service, tmp_path / "s.sock", max_inflight=1)

        async def scenario():
            r1, w1 = await asyncio.open_unix_connection(str(daemon.socket_path))
            r2, w2 = await asyncio.open_unix_connection(str(daemon.socket_path))
            slow = asyncio.create_task(_send(r1, w1, {"id": 1, "op": "ping"}))
            await asyncio.sleep(0.15)  # let the slow ping occupy the slot
            shed = await _send(r2, w2, {"id": 2, "op": "ping"})
            assert shed["ok"] is False
            assert shed["error"]["code"] == "overloaded"
            ok = await slow
            assert ok["ok"] is True
            w1.close()
            w2.close()

        with fresh_telemetry() as telemetry:
            _run(daemon, scenario)
            assert daemon.shed_requests == 1
            assert telemetry.as_dict()["counters"]["serve/shed_requests"] == 1

    def test_timeout_then_recovery(self, tmp_path):
        service = _service()
        inner = service.handle

        def slow_handle(request):
            if request["op"] == "ping":
                time.sleep(0.5)
            return inner(request)

        service.handle = slow_handle
        node = service.graph.node_ids[0]
        daemon = ServeDaemon(service, tmp_path / "s.sock", request_timeout=0.1)

        async def scenario():
            reader, writer = await asyncio.open_unix_connection(
                str(daemon.socket_path)
            )
            response = await _send(reader, writer, {"id": 1, "op": "ping"})
            assert response["ok"] is False
            assert response["error"]["code"] == "timeout"
            # The orphaned thread still holds its slot; a fresh request
            # succeeds once it drains (features is not slowed).
            response = await _send(
                reader, writer, {"id": 2, "op": "features", "node": node}
            )
            assert response["ok"] is True
            writer.close()

        with fresh_telemetry():
            _run(daemon, scenario)
        assert daemon.timeouts == 1

    def test_timed_out_write_never_overlaps_next_write(self, tmp_path):
        """A straggling mutation thread must finish before the next one runs."""
        service = _service()
        inner = service.handle
        active = {"writers": 0, "max": 0}

        def slow_write_handle(request):
            if request["op"] in ("add_edge", "remove_edge"):
                active["writers"] += 1
                active["max"] = max(active["max"], active["writers"])
                try:
                    time.sleep(0.3)
                    return inner(request)
                finally:
                    active["writers"] -= 1
            return inner(request)

        service.handle = slow_write_handle
        graph = service.graph
        ids = graph.node_ids
        edges = {(u, v) for u, v in graph.edges()}
        fresh = [
            (u, v)
            for u in range(graph.num_nodes)
            for v in range(u + 1, graph.num_nodes)
            if (u, v) not in edges
        ][:2]
        daemon = ServeDaemon(service, tmp_path / "s.sock", request_timeout=0.1)

        async def scenario():
            r1, w1 = await asyncio.open_unix_connection(str(daemon.socket_path))
            r2, w2 = await asyncio.open_unix_connection(str(daemon.socket_path))
            (u1, v1), (u2, v2) = fresh
            first = await _send(
                r1, w1, {"id": 1, "op": "add_edge", "u": ids[u1], "v": ids[v1]}
            )
            assert first["error"]["code"] == "timeout"
            # Sent immediately after the timeout: must wait out the
            # straggler, not run alongside it.
            second = await _send(
                r2, w2, {"id": 2, "op": "add_edge", "u": ids[u2], "v": ids[v2]}
            )
            assert second["error"]["code"] == "timeout"
            w1.close()
            w2.close()

        with fresh_telemetry():
            _run(daemon, scenario)
        assert active["max"] == 1, "two mutations overlapped"

    def test_shutdown_op(self, tmp_path):
        daemon = ServeDaemon(_service(), tmp_path / "s.sock")

        async def scenario():
            ready = asyncio.Event()
            task = asyncio.create_task(daemon.run(ready))
            await ready.wait()
            reader, writer = await asyncio.open_unix_connection(
                str(daemon.socket_path)
            )
            response = await _send(reader, writer, {"id": 1, "op": "shutdown"})
            assert response == {"id": 1, "ok": True, "result": {"stopping": True}}
            writer.close()
            await asyncio.wait_for(task, timeout=5)
            assert not daemon.socket_path.exists()

        with fresh_telemetry():
            asyncio.run(scenario())

    def test_constructor_validation(self, tmp_path):
        service = _service()
        with pytest.raises(ValueError):
            ServeDaemon(service, tmp_path / "s.sock", request_timeout=0)
        with pytest.raises(ValueError):
            ServeDaemon(service, tmp_path / "s.sock", max_inflight=0)

    def test_orphan_gauge_and_slot_release(self, tmp_path):
        """Regression: a timed-out request's slot must be *visible* while
        orphaned (``serve/orphaned`` gauge + warning) and released once
        the straggler thread completes."""
        service = _service()
        inner = service.handle
        release = threading.Event()

        def slow_handle(request):
            if request["op"] == "ping":
                release.wait(5)
            return inner(request)

        service.handle = slow_handle
        daemon = ServeDaemon(
            service, tmp_path / "s.sock", request_timeout=0.1, max_inflight=1
        )

        async def scenario():
            r1, w1 = await asyncio.open_unix_connection(str(daemon.socket_path))
            r2, w2 = await asyncio.open_unix_connection(str(daemon.socket_path))
            timed_out = await _send(r1, w1, {"id": 1, "op": "ping"})
            assert timed_out["error"]["code"] == "timeout"
            assert daemon.orphaned == 1
            # The orphan still owns the only slot: new work is shed.
            shed = await _send(r2, w2, {"id": 2, "op": "stats"})
            assert shed["error"]["code"] == "overloaded"
            release.set()
            for _ in range(100):
                if daemon.orphaned == 0:
                    break
                await asyncio.sleep(0.05)
            assert daemon.orphaned == 0
            # Slot released: the same daemon serves again.
            ok = await _send(r2, w2, {"id": 3, "op": "stats"})
            assert ok["ok"] is True
            w1.close()
            w2.close()

        # Capture on the daemon's logger directly: repro's CLI logging
        # setup stops propagation to the root logger, so caplog (whose
        # handler sits at the root) misses these records when any CLI
        # test ran earlier in the session.
        records = []
        handler = logging.Handler(level=logging.WARNING)
        handler.emit = records.append
        serve_logger = logging.getLogger("repro.serve.daemon")
        serve_logger.addHandler(handler)
        try:
            with fresh_telemetry() as telemetry:
                _run(daemon, scenario)
                assert telemetry.as_dict()["gauges"]["serve/orphaned"] == 1
        finally:
            serve_logger.removeHandler(handler)
        # 1 orphan > max_inflight/2 = 0.5: the imminent-shedding warning.
        assert any("orphaned" in record.getMessage() for record in records)


class TestTCPTransport:
    """The --tcp path: same protocol, same daemon, different transport."""

    def test_round_trip_over_tcp(self):
        service = _service()
        node = service.graph.node_ids[0]
        daemon = ServeDaemon(service, "127.0.0.1:0")
        assert daemon.socket_path is None
        assert daemon.endpoint.kind == "tcp"

        async def scenario():
            # run() resolved the ephemeral port.
            assert daemon.endpoint.port != 0
            reader, writer = await open_connection(daemon.endpoint)
            response = await _send(reader, writer, {"id": 1, "op": "ping"})
            assert response == {"id": 1, "ok": True, "result": {"pong": True}}
            response = await _send(
                reader, writer, {"id": 2, "op": "features", "node": node}
            )
            assert response["ok"]
            assert response["result"]["total"] == sum(
                response["result"]["counts"].values()
            )
            writer.close()

        with fresh_telemetry():
            _run(daemon, scenario)
        assert daemon.requests == 2

    def test_tcp_results_match_unix(self, tmp_path):
        """Zero behavior change across transports: identical responses."""
        results = {}
        for name, endpoint in (
            ("unix", tmp_path / "s.sock"),
            ("tcp", "127.0.0.1:0"),
        ):
            service = _service()
            nodes = service.graph.node_ids[:5]
            daemon = ServeDaemon(service, endpoint)
            captured = []

            async def scenario():
                reader, writer = await open_connection(daemon.endpoint)
                for i, node in enumerate(nodes):
                    response = await _send(
                        reader, writer,
                        {"id": i, "op": "features", "node": node},
                    )
                    captured.append(response)
                writer.close()

            with fresh_telemetry():
                _run(daemon, scenario)
            results[name] = captured
        assert results["unix"] == results["tcp"]


class TestProtocolHelpers:
    def test_decode_request_rejects_garbage(self):
        for raw in (b"\xff\xfe\n", b"[1, 2]\n", b"42\n", b'{"op": 3}\n'):
            with pytest.raises(_ServeError) as excinfo:
                decode_request(raw)
            assert excinfo.value.code == "bad_request"

    def test_require_type_discipline(self):
        assert require({"op": "x", "k": 5}, "k", int) == 5
        with pytest.raises(_ServeError):
            require({"op": "x"}, "k", int)
        with pytest.raises(_ServeError):
            require({"op": "x", "k": True}, "k", int)  # bool is not an int here
