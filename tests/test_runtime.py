"""Tests for the unified execution runtime: context, store, pipeline.

Covers the :class:`RunContext` resolution shims, the single
:func:`resolve_engine` validator (every call site must enumerate its
valid choices), and the content-addressed :class:`ArtifactStore` —
cross-stage key isolation, durability statuses, and FIFO eviction
across mixed stage types.
"""

import logging
import pickle
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core.census import CensusConfig, subgraph_census
from repro.embeddings.line import LINE
from repro.embeddings.skipgram import SkipGramTrainer, walks_to_pairs
from repro.embeddings.walks import node2vec_walks, uniform_random_walks
from repro.exceptions import CensusError
from repro.ml.forest import RandomForestRegressor
from repro.obs import fresh_telemetry
from repro.runtime import (
    ArtifactStore,
    Pipeline,
    RunContext,
    artifact_key,
    freeze_config,
    resolve_engine,
    resolve_n_jobs,
)

FP = "fingerprint-a"


class TestResolveEngine:
    def test_valid_name_passes_through(self):
        assert resolve_engine("fast", ("fast", "reference")) == "fast"

    def test_message_enumerates_choices(self):
        with pytest.raises(
            ValueError,
            match="unknown engine 'turbo': valid choices are 'fast', 'reference'",
        ):
            resolve_engine("turbo", ("fast", "reference"))

    def test_custom_param_and_error(self):
        class Boom(Exception):
            pass

        with pytest.raises(Boom, match="unknown widget engine 'x'"):
            resolve_engine("x", ("a",), param="widget engine", error=Boom)


class TestEngineValidationCallSites:
    """Every engine dispatch shares the unified wording (the PR-5 bugfix:
    previously each site raised a differently-shaped error, some without
    naming the valid choices)."""

    def test_census_site(self, publication_graph):
        with pytest.raises(
            CensusError,
            match="unknown census engine 'turbo': valid choices are "
            "'fast', 'reference'",
        ):
            subgraph_census(
                publication_graph, 0, CensusConfig(max_edges=2), engine="turbo"
            )

    def test_walks_site(self, publication_graph):
        with pytest.raises(ValueError, match="unknown walk engine 'turbo'"):
            uniform_random_walks(
                publication_graph, num_walks=1, walk_length=2, engine="turbo"
            )

    def test_node2vec_walks_site(self, publication_graph):
        with pytest.raises(ValueError, match="unknown walk engine 'turbo'"):
            node2vec_walks(
                publication_graph, num_walks=1, walk_length=2, q=2.0, engine="turbo"
            )

    def test_pairs_site(self):
        walks = np.array([[0, 1, 2]], dtype=np.int64)
        with pytest.raises(
            ValueError, match="unknown pairs engine 'turbo': valid choices are"
        ):
            walks_to_pairs(walks, 1, np.random.default_rng(0), engine="turbo")

    def test_trainer_site(self):
        with pytest.raises(
            ValueError, match="unknown trainer engine 'turbo': valid choices are"
        ):
            SkipGramTrainer(dim=4, engine="turbo")

    def test_line_site(self):
        with pytest.raises(
            ValueError, match="unknown LINE engine 'turbo': valid choices are"
        ):
            LINE(dim=4, engine="turbo")

    def test_forest_site(self):
        with pytest.raises(
            ValueError,
            match="unknown forest engine 'turbo': valid choices are "
            "'fast', 'reference'",
        ):
            RandomForestRegressor(n_estimators=2, engine="turbo")


class TestRunContext:
    def test_ensure_builds_fresh_context(self):
        ctx = RunContext.ensure(None, engine="reference")
        assert ctx.engine == "reference"
        assert ctx.n_jobs is None

    def test_ensure_legacy_kwargs_override_context(self):
        base = RunContext(engine="fast", n_jobs=2)
        ctx = RunContext.ensure(base, engine="reference")
        assert ctx.engine == "reference"
        assert ctx.n_jobs == 2  # untouched fields survive
        assert base.engine == "fast"  # original context is not mutated

    def test_ensure_none_overrides_are_ignored(self):
        base = RunContext(engine="reference")
        assert RunContext.ensure(base, engine=None) is base

    def test_resolve_engine_uses_default_when_unset(self):
        assert RunContext().resolve_engine(("fast", "reference")) == "fast"

    def test_resolved_n_jobs_auto(self):
        assert RunContext(n_jobs=0).resolved_n_jobs() >= 1
        assert RunContext().resolved_n_jobs(default=3) == 3

    def test_resolve_n_jobs_rejects_negative(self):
        with pytest.raises(ValueError, match="n_jobs"):
            resolve_n_jobs(-2)
        assert resolve_n_jobs("auto") >= 1

    def test_resolved_seed(self):
        assert RunContext(seed=9).resolved_seed() == 9
        assert RunContext().resolved_seed(default=4) == 4

    def test_resolved_executor(self):
        from repro.runtime.context import VALID_EXECUTORS

        assert RunContext().resolved_executor() == "local"
        assert RunContext(executor="remote").resolved_executor() == "remote"
        assert "remote" in VALID_EXECUTORS
        with pytest.raises(ValueError, match="executor"):
            RunContext(executor="warp").resolved_executor()

    def test_executor_and_workers_in_provenance(self):
        from repro.obs import fresh_telemetry

        ctx = RunContext(
            executor="remote", workers=("h1:9000", "h2:9000")
        )
        with fresh_telemetry() as telemetry:
            ctx.annotate_provenance()
            annotations = telemetry.as_dict()["annotations"]
        assert annotations["run/executor"] == "remote"
        assert annotations["run/workers"] == "2"


class TestFreezeConfig:
    def test_dict_order_is_canonicalised(self):
        assert freeze_config({"b": 1, "a": [1, 2]}) == freeze_config(
            {"a": (1, 2), "b": 1}
        )

    def test_sets_are_sorted(self):
        assert freeze_config({3, 1, 2}) == (1, 2, 3)

    def test_nested_structures_hashable(self):
        frozen = freeze_config({"x": [{"y": {1, 2}}, "s"]})
        hash(frozen)  # must not raise


class TestArtifactStoreKeys:
    def test_cross_stage_isolation(self):
        store = ArtifactStore()
        config = (2, None)
        store.put(FP, "census", config, {"code": 1})
        store.put(FP, "walks", config, np.arange(3))
        assert store.get(FP, "census", config) == {"code": 1}
        np.testing.assert_array_equal(store.get(FP, "walks", config), np.arange(3))
        assert store.get(FP, "embed", config) is None

    def test_fingerprint_isolation(self):
        store = ArtifactStore()
        store.put(FP, "census", (1,), "a")
        assert store.get("fingerprint-b", "census", (1,)) is None

    def test_hits_are_defensive_copies(self):
        store = ArtifactStore()
        store.put(FP, "embed", (1,), np.zeros(3))
        first = store.get(FP, "embed", (1,))
        first[:] = 99.0
        np.testing.assert_array_equal(store.get(FP, "embed", (1,)), np.zeros(3))

    def test_counters_track_per_stage(self):
        store = ArtifactStore()
        store.put(FP, "census", (1,), "x")
        store.get(FP, "census", (1,))
        store.get(FP, "embed", (1,))
        assert store.stage_hits == {"census": 1}
        assert store.stage_misses == {"embed": 1}
        stats = store.stage_stats()
        assert stats["census"] == {"hits": 1, "misses": 0, "entries": 1}
        assert stats["embed"]["misses"] == 1

    def test_artifact_key_freezes_config(self):
        key = artifact_key(FP, "census", {"b": 1, "a": 2})
        assert key == (FP, "census", (("a", 2), ("b", 1)))


@contextmanager
def captured_store_warnings():
    """Collect warning records from the store module's logger.

    ``caplog`` cannot be used: the ``repro`` hierarchy sets
    ``propagate = False`` once the CLI has configured logging (other
    tests in the session do), so records never reach the root logger
    pytest listens on.  A handler on the module logger sees them
    regardless.
    """
    records: list[logging.LogRecord] = []

    class _Collector(logging.Handler):
        def emit(self, record: logging.LogRecord) -> None:
            records.append(record)

    store_logger = logging.getLogger("repro.runtime.store")
    handler = _Collector(level=logging.WARNING)
    old_level = store_logger.level
    store_logger.addHandler(handler)
    store_logger.setLevel(logging.WARNING)
    try:
        yield records
    finally:
        store_logger.removeHandler(handler)
        store_logger.setLevel(old_level)


class TestArtifactStoreDurability:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "store.pkl"
        store = ArtifactStore(path)
        assert store.load_status == "missing"
        store.put(FP, "census", (1,), {"c": 2})
        store.save()
        reloaded = ArtifactStore(path)
        assert reloaded.load_status == "loaded"
        assert reloaded.get(FP, "census", (1,)) == {"c": 2}

    def test_corrupt_file_reported(self, tmp_path):
        path = tmp_path / "store.pkl"
        path.write_bytes(b"not a pickle")
        with captured_store_warnings() as records:
            store = ArtifactStore(path)
        assert store.load_status == "corrupt"
        assert len(store) == 0
        assert any("unreadable" in record.getMessage() for record in records)

    def test_version_mismatch_reported(self, tmp_path):
        path = tmp_path / "store.pkl"
        path.write_bytes(pickle.dumps({"version": 1, "entries": {"k": "v"}}))
        with captured_store_warnings() as records:
            store = ArtifactStore(path)
        assert store.load_status == "version-mismatch"
        assert len(store) == 0
        assert any("version" in record.getMessage() for record in records)

    def test_save_is_atomic_leaves_no_temp(self, tmp_path):
        path = tmp_path / "store.pkl"
        store = ArtifactStore(path)
        store.put(FP, "walks", (1,), np.arange(2))
        store.save()
        assert not list(tmp_path.glob("store.pkl.*.tmp"))

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError, match="path"):
            ArtifactStore().save()


class TestArtifactStoreEviction:
    def test_fifo_across_mixed_stages(self):
        store = ArtifactStore(max_entries=2)
        store.put(FP, "census", (1,), "a")
        store.put(FP, "walks", (1,), "b")
        store.put(FP, "embed", (1,), "c")
        assert store.get(FP, "census", (1,)) is None  # oldest, evicted
        assert store.get(FP, "walks", (1,)) == "b"
        assert store.get(FP, "embed", (1,)) == "c"
        assert store.evictions == 1
        assert len(store) == 2

    def test_overwrite_does_not_evict(self):
        store = ArtifactStore(max_entries=2)
        store.put(FP, "census", (1,), "a")
        store.put(FP, "census", (2,), "b")
        store.put(FP, "census", (1,), "a2")
        assert store.evictions == 0
        assert store.get(FP, "census", (1,)) == "a2"

    def test_bad_max_entries_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            ArtifactStore(max_entries=0)


class TestPipeline:
    def test_stages_record_spans_and_order(self):
        with fresh_telemetry() as telemetry:
            pipeline = Pipeline("demo", RunContext(engine="fast", n_jobs=1))
            with pipeline.stage("dataset"):
                pass
            with pipeline.stage("experiment"):
                pass
            assert pipeline.executed == ["dataset", "experiment"]
            data = telemetry.as_dict()
            assert "stage/dataset" in data["timers"]
            assert "stage/experiment" in data["timers"]
            assert data["annotations"]["pipeline/name"] == "demo"
            # Annotations are stringified by the registry.
            assert data["annotations"]["pipeline/stages"] == str(
                ("dataset", "experiment")
            )
            assert data["annotations"]["run/engine"] == "fast"
            assert data["annotations"]["run/n_jobs"] == "1"


class TestStoreDrivenStages:
    def test_walk_corpus_cached_for_int_seed(self, publication_graph):
        store = ArtifactStore()
        ctx = RunContext(store=store)
        first = uniform_random_walks(
            publication_graph, num_walks=2, walk_length=5, rng=7, ctx=ctx
        )
        second = uniform_random_walks(
            publication_graph, num_walks=2, walk_length=5, rng=7, ctx=ctx
        )
        np.testing.assert_array_equal(first, second)
        assert store.stage_hits.get("walks") == 1

    def test_generator_rng_is_never_cached(self, publication_graph):
        store = ArtifactStore()
        ctx = RunContext(store=store)
        uniform_random_walks(
            publication_graph,
            num_walks=1,
            walk_length=4,
            rng=np.random.default_rng(0),
            ctx=ctx,
        )
        assert len(store) == 0


class TestStoreStats:
    def test_stats_summarise_entries_and_payload(self):
        store = ArtifactStore(max_entries=2)
        store.put(FP, "census", (1,), "x")
        store.put(FP, "census", (2,), "y")
        store.put(FP, "embed", (1,), "z")  # evicts the oldest census entry
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert stats["approx_payload_bytes"] > 0
        assert stats["stages"]["census"]["entries"] == 1
        assert stats["stages"]["embed"]["entries"] == 1

    def test_record_stats_emits_store_gauges(self):
        store = ArtifactStore()
        store.put(FP, "census", (1,), "x")
        store.put(FP, "partition", (1,), "p")
        with fresh_telemetry() as telemetry:
            store.record_stats(telemetry)
            gauges = telemetry.as_dict()["gauges"]
        assert gauges["store/entries"] == 2
        assert gauges["store/evictions"] == 0
        assert gauges["store/approx_payload_bytes"] > 0
        assert gauges["store/entries/census"] == 1
        assert gauges["store/entries/partition"] == 1

    def test_save_records_stats(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.pkl")
        store.put(FP, "features", (1,), [1, 2, 3])
        with fresh_telemetry() as telemetry:
            store.save()
            gauges = telemetry.as_dict()["gauges"]
        assert gauges["store/entries"] == 1
        assert gauges["store/entries/features"] == 1


class TestArtifactStoreLRU:
    def test_get_refreshes_recency(self):
        store = ArtifactStore(max_entries=2)
        store.put(FP, "census", (1,), "a")
        store.put(FP, "census", (2,), "b")
        assert store.get(FP, "census", (1,)) == "a"  # touch: a is now newest
        store.put(FP, "census", (3,), "c")
        assert store.get(FP, "census", (2,)) is None  # b was the LRU victim
        assert store.get(FP, "census", (1,)) == "a"
        assert store.get(FP, "census", (3,)) == "c"

    def test_overwrite_refreshes_recency(self):
        store = ArtifactStore(max_entries=2)
        store.put(FP, "census", (1,), "a")
        store.put(FP, "census", (2,), "b")
        store.put(FP, "census", (1,), "a2")  # overwrite: a is now newest
        store.put(FP, "census", (3,), "c")
        assert store.get(FP, "census", (2,)) is None
        assert store.get(FP, "census", (1,)) == "a2"

    def test_partition_floor_survives_census_flood(self):
        # The regression this guards: a long census run used to evict the
        # halo-complete partition sets it was itself iterating over.
        store = ArtifactStore(max_entries=6)
        for i in range(4):
            store.put(FP, "partition", (i,), f"part-{i}")
        for i in range(40):
            store.put(FP, "census", (i,), i)
        assert store.stage_entries("partition") == 4
        for i in range(4):
            assert store.get(FP, "partition", (i,)) == f"part-{i}"
        assert store.stage_entries("census") == 2
        assert len(store) == 6

    def test_embed_floor_is_default_protected(self):
        store = ArtifactStore(max_entries=4)
        store.put(FP, "embed", (0,), "matrix")
        for i in range(20):
            store.put(FP, "census", (i,), i)
        assert store.get(FP, "embed", (0,)) == "matrix"

    def test_floor_overflow_rather_than_evict_protected(self):
        # When everything evictable is protected the store runs over
        # max_entries instead of dropping protected artifacts.
        store = ArtifactStore(max_entries=2)
        for i in range(4):
            store.put(FP, "partition", (i,), i)
        assert len(store) == 4
        assert store.evictions == 0

    def test_custom_floors_override_defaults(self):
        # An explicit empty mapping clears the default partition floor.
        store = ArtifactStore(max_entries=2, stage_floors={})
        store.put(FP, "partition", (1,), "p")
        store.put(FP, "census", (1,), "a")
        store.put(FP, "census", (2,), "b")
        assert store.get(FP, "partition", (1,)) is None  # no floor: evicted
        assert store.get(FP, "census", (1,)) == "a"

    def test_floor_keeps_stage_at_floor_not_above(self):
        # A floor of 1 protects the *last* entry of a stage, not every
        # entry: the oldest one is still evictable while count > floor.
        store = ArtifactStore(max_entries=2, stage_floors={"census": 1})
        store.put(FP, "census", (1,), "a")
        store.put(FP, "partition", (1,), "p")
        store.put(FP, "census", (2,), "b")
        assert store.get(FP, "census", (1,)) is None  # oldest, above floor
        assert store.get(FP, "census", (2,)) == "b"
        assert store.get(FP, "partition", (1,)) == "p"

    def test_discard_removes_without_counting_eviction(self):
        store = ArtifactStore()
        store.put(FP, "census", (1,), "a")
        assert store.discard(FP, "census", (1,)) is True
        assert store.discard(FP, "census", (1,)) is False
        assert store.get(FP, "census", (1,)) is None
        assert store.evictions == 0
        assert store.stage_entries("census") == 0

    def test_counter_artifacts_fast_copied(self):
        from collections import Counter as _Counter

        store = ArtifactStore()
        census = _Counter({101: 3, 202: 1})
        store.put(FP, "census", (1,), census)
        census[999] = 7  # caller mutation must not reach the store
        got = store.get(FP, "census", (1,))
        assert got == _Counter({101: 3, 202: 1})
        got[555] = 1  # nor must reader mutation
        assert store.get(FP, "census", (1,)) == _Counter({101: 3, 202: 1})


class TestArtifactStoreMove:
    # Regression for the serve-layer key migration, which emulated a move
    # with get() + discard() + put(): the payload/stage accounting saw
    # phantom traffic (hits inflated once per migrated root) and every
    # migration paid two deep copies of the artifact.

    def test_move_rekeys_entry(self):
        store = ArtifactStore()
        store.put(FP, "census", (1,), {"rows": [1, 2]})
        assert store.move(FP, "f" * 32, "census", (1,)) is True
        assert store.get(FP, "census", (1,)) is None
        assert store.get("f" * 32, "census", (1,)) == {"rows": [1, 2]}

    def test_move_missing_source_returns_false(self):
        store = ArtifactStore()
        assert store.move(FP, "f" * 32, "census", (1,)) is False

    def test_move_does_not_touch_hit_counters(self):
        store = ArtifactStore()
        for root in range(10):
            store.put(FP, "census", (root,), root)
        for root in range(10):
            assert store.move(FP, "f" * 32, "census", (root,))
        # Migration is bookkeeping, not lookups: the old emulation left
        # hits == 10 here, poisoning the manifest's hit-rate stats.
        assert store.hits == 0
        assert store.misses == 0
        assert store.stage_stats().get("census", {}).get("hits", 0) == 0

    def test_move_keeps_payload_and_stage_counts_exact(self):
        store = ArtifactStore()
        for root in range(8):
            store.put(FP, "census", (root,), list(range(64)))
        before = store.stats()
        for root in range(8):
            store.move(FP, "f" * 32, "census", (root,))
        after = store.stats()
        assert after["entries"] == before["entries"] == 8
        assert after["stages"]["census"]["entries"] == 8
        assert after["approx_payload_bytes"] == before["approx_payload_bytes"]
        assert store.stage_entries("census") == 8

    def test_move_onto_existing_destination_replaces(self):
        store = ArtifactStore()
        store.put(FP, "census", (1,), "old-fp-entry")
        store.put("f" * 32, "census", (1,), "new-fp-entry")
        assert store.move(FP, "f" * 32, "census", (1,)) is True
        assert store.get(FP, "census", (1,)) is None
        assert store.get("f" * 32, "census", (1,)) == "old-fp-entry"
        assert store.stage_entries("census") == 1
        assert len(store) == 1

    def test_move_avoids_deep_copies(self):
        store = ArtifactStore()
        payload = {"big": list(range(16))}
        store.put(FP, "census", (1,), payload)
        stored_before = store.get(FP, "census", (1,))
        store.move(FP, "f" * 32, "census", (1,))
        # The stored object is re-addressed, not round-tripped through
        # the defensive-copy path of get()/put(); reads still copy.
        got = store.get("f" * 32, "census", (1,))
        assert got == stored_before
        got["big"].append(99)
        assert store.get("f" * 32, "census", (1,)) == stored_before

    def test_move_lands_at_newest_lru_position(self):
        store = ArtifactStore(max_entries=2)
        store.put(FP, "census", (1,), "a")
        store.put(FP, "census", (2,), "b")
        store.move(FP, "f" * 32, "census", (1,))  # a becomes newest
        store.put(FP, "census", (3,), "c")  # evicts b, the true LRU
        assert store.get(FP, "census", (2,)) is None
        assert store.get("f" * 32, "census", (1,)) == "a"


class TestArtifactStoreConcurrency:
    def test_threaded_stress(self, tmp_path):
        # Regression for the unsynchronised store: concurrent put/get/
        # stats used to corrupt the entry dict and the stage tallies.
        import threading

        store = ArtifactStore(tmp_path / "store.pkl", max_entries=64)
        stages = ("census", "walks", "embed", "features", "partition")
        errors = []
        barrier = threading.Barrier(8)

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            barrier.wait()
            try:
                for i in range(300):
                    stage = stages[int(rng.integers(len(stages)))]
                    config = (int(rng.integers(24)),)
                    roll = rng.random()
                    if roll < 0.5:
                        store.put(FP, stage, config, (seed, i))
                    elif roll < 0.9:
                        store.get(FP, stage, config)
                    elif roll < 0.97:
                        store.stats()
                        store.stage_stats()
                    else:
                        store.save()
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # The incremental stage tallies must agree with the entry dict.
        assert sum(
            store.stage_entries(stage) for stage in stages
        ) == len(store)
        if store.max_entries is not None:
            protected = sum(store.stage_floors.values())
            assert len(store) <= store.max_entries + protected

    def test_concurrent_get_put_same_key(self):
        import threading

        store = ArtifactStore()
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                store.put(FP, "census", (1,), {"i": i})
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    value = store.get(FP, "census", (1,))
                    if value is not None:
                        assert "i" in value
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        import time as _time

        _time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []
