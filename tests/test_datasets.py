"""Tests for the synthetic dataset generators and their schemas."""

import numpy as np
import pytest

from repro.core.connectivity import label_connectivity
from repro.datasets import (
    IMDB_SCHEMA,
    LOAD_SCHEMA,
    MAG_LABEL_SCHEMA,
    MAG_RANK_SCHEMA,
    ImdbConfig,
    LoadConfig,
    MagConfig,
    SyntheticIMDB,
    SyntheticLOAD,
    SyntheticMAG,
    affinity_graph,
    complete_bipartite,
    path,
    powerlaw_weights,
    sample_nodes_per_label,
    star,
)


# Small worlds shared across tests in this module.
@pytest.fixture(scope="module")
def small_mag():
    return SyntheticMAG(
        MagConfig(
            num_institutions=15,
            authors_per_institution=4,
            papers_per_conference_year=20,
            conferences=("KDD", "ICML"),
            years=tuple(range(2010, 2016)),
            seed=1,
        )
    )


@pytest.fixture(scope="module")
def small_load():
    return SyntheticLOAD(
        LoadConfig(
            num_locations=60,
            num_organizations=40,
            num_actors=70,
            num_dates=30,
            mean_degree=8,
            seed=2,
        )
    )


@pytest.fixture(scope="module")
def small_imdb():
    return SyntheticIMDB(
        ImdbConfig(
            num_movies=60,
            num_actors=90,
            num_directors=20,
            num_writers=30,
            num_composers=15,
            num_keywords=25,
            seed=3,
        )
    )


class TestSynthetic:
    def test_powerlaw_heavy_tail(self):
        weights = powerlaw_weights(5000, exponent=2.5, rng=0)
        assert weights.min() >= 1.0
        assert weights.max() / np.median(weights) > 10

    def test_powerlaw_validation(self):
        with pytest.raises(ValueError):
            powerlaw_weights(0)
        with pytest.raises(ValueError):
            powerlaw_weights(10, exponent=1.0)

    def test_affinity_graph_respects_zero_affinity(self):
        graph = affinity_graph(
            {"A": 50, "B": 50},
            {("A", "B"): 1.0},  # no A-A, no B-B
            mean_degree=6,
            rng=0,
        )
        connectivity = label_connectivity(graph)
        assert not connectivity.has_loops
        pairs = {(a, b) for a, b, _ in connectivity.label_pairs()}
        assert pairs == {("A", "B")}

    def test_affinity_graph_mean_degree_approximate(self):
        graph = affinity_graph(
            {"A": 200, "B": 200},
            {("A", "B"): 1.0, ("A", "A"): 1.0, ("B", "B"): 1.0},
            mean_degree=10,
            rng=1,
        )
        mean = 2 * graph.num_edges / graph.num_nodes
        # Duplicate discards push the realised mean below target.
        assert 5 <= mean <= 10.5

    def test_affinity_graph_empty_affinity_rejected(self):
        with pytest.raises(ValueError):
            affinity_graph({"A": 10}, {}, rng=0)

    def test_fixtures(self):
        s = star("M", ["A", "A", "K"])
        assert s.num_edges == 3
        p = path(["x", "y", "z"])
        assert p.num_edges == 2
        kb = complete_bipartite("A", 2, "B", 3)
        assert kb.num_edges == 6


class TestMag:
    def test_paper_counts(self, small_mag):
        assert len(small_mag.papers) == 2 * 6 * 20

    def test_relevance_directives(self, small_mag):
        """Total relevance equals the number of full papers (each paper has
        one vote, fully distributed)."""
        for conference in small_mag.config.conferences:
            relevance = small_mag.relevance(conference, 2014)
            full = sum(
                1
                for pid in small_mag.papers_by_conf_year[(conference, 2014)]
                if small_mag.papers[pid].is_full
            )
            assert sum(relevance.values()) == pytest.approx(full)

    def test_relevance_unknown_year_raises(self, small_mag):
        with pytest.raises(KeyError):
            small_mag.relevance("KDD", 1999)

    def test_relevance_nonnegative(self, small_mag):
        relevance = small_mag.relevance("ICML", 2013)
        assert all(v >= 0 for v in relevance.values())

    def test_rank_graph_schema(self, small_mag):
        graph = small_mag.build_rank_graph("KDD", 2013)
        assert MAG_RANK_SCHEMA.validate(label_connectivity(graph)) == []
        assert graph.labelset == MAG_RANK_SCHEMA.labelset

    def test_rank_graph_contains_all_institutions(self, small_mag):
        graph = small_mag.build_rank_graph("KDD", 2013)
        for institution in small_mag.institutions:
            graph.index(institution)  # does not raise

    def test_rank_graph_reference_depth_monotone(self, small_mag):
        shallow = small_mag.build_rank_graph("KDD", 2014, reference_depth=0)
        deep = small_mag.build_rank_graph("KDD", 2014, reference_depth=2)
        assert deep.num_nodes >= shallow.num_nodes
        assert deep.num_edges >= shallow.num_edges

    def test_label_graph_schema(self, small_mag):
        graph = small_mag.build_label_graph()
        assert MAG_LABEL_SCHEMA.validate(label_connectivity(graph)) == []

    def test_label_graph_has_all_six_labels(self, small_mag):
        graph = small_mag.build_label_graph()
        assert set(graph.labelset.names) == {"A", "I", "C", "J", "F", "P"}
        counts = graph.label_counts()
        assert np.all(counts > 0)

    def test_strength_is_persistent(self, small_mag):
        """Year-over-year strength correlation must be positive — that is
        what makes history predictive."""
        years = small_mag.config.years
        values = np.array(
            [
                [small_mag.strength[(i, "KDD", y)] for i in small_mag.institutions]
                for y in years
            ]
        )
        correlations = [
            np.corrcoef(values[k], values[k + 1])[0, 1] for k in range(len(years) - 1)
        ]
        assert np.mean(correlations) > 0.5

    def test_relevance_correlates_with_strength(self, small_mag):
        strengths = np.array(
            [small_mag.strength[(i, "KDD", 2014)] for i in small_mag.institutions]
        )
        relevance = small_mag.relevance("KDD", 2014)
        values = np.array([relevance[i] for i in small_mag.institutions])
        assert np.corrcoef(strengths, values)[0, 1] > 0.3

    def test_deterministic(self):
        config = MagConfig(
            num_institutions=5,
            authors_per_institution=2,
            papers_per_conference_year=5,
            conferences=("KDD",),
            years=(2014, 2015),
            seed=9,
        )
        a, b = SyntheticMAG(config), SyntheticMAG(config)
        assert a.relevance("KDD", 2015) == b.relevance("KDD", 2015)
        assert [p.title for p in a.papers.values()] == [
            p.title for p in b.papers.values()
        ]

    def test_titles_non_empty(self, small_mag):
        assert all(paper.title for paper in small_mag.papers.values())


class TestLoad:
    def test_schema(self, small_load):
        connectivity = label_connectivity(small_load.graph)
        assert small_load.schema is LOAD_SCHEMA
        assert LOAD_SCHEMA.validate(connectivity) == []

    def test_fully_connected_label_graph(self, small_load):
        """LOAD's label connectivity graph is complete with self loops."""
        connectivity = label_connectivity(small_load.graph)
        assert connectivity.has_loops
        assert len(connectivity.label_pairs()) == 10  # C(4,2) + 4 loops

    def test_degree_skew(self, small_load):
        degrees = small_load.graph.degrees()
        assert degrees.max() > 5 * np.median(degrees[degrees > 0])

    def test_sampling(self, small_load):
        nodes, labels = small_load.sample_nodes_per_label(10, rng=0)
        assert len(nodes) == 40
        counts = np.bincount(labels, minlength=4)
        assert counts.tolist() == [10, 10, 10, 10]
        degrees = small_load.graph.degrees()
        assert np.all(degrees[nodes] > 0)


class TestImdb:
    def test_schema_star_shape(self, small_imdb):
        connectivity = label_connectivity(small_imdb.graph)
        assert IMDB_SCHEMA.validate(connectivity) == []
        assert not connectivity.has_loops

    def test_all_edges_touch_movies(self, small_imdb):
        graph = small_imdb.graph
        movie_label = graph.labelset.index("M")
        for u, v in graph.edges():
            assert movie_label in (graph.label_of(u), graph.label_of(v))

    def test_each_movie_has_one_director(self, small_imdb):
        graph = small_imdb.graph
        d = graph.labelset.index("D")
        for movie in graph.nodes_with_label(graph.labelset.index("M")):
            assert graph.label_degree(int(movie), d) == 1

    def test_actor_counts_in_range(self, small_imdb):
        graph = small_imdb.graph
        a = graph.labelset.index("A")
        low, high = small_imdb.config.actors_per_movie
        for movie in graph.nodes_with_label(graph.labelset.index("M")):
            assert low <= graph.label_degree(int(movie), a) <= high

    def test_popularity_reuse(self, small_imdb):
        """Some satellites appear in many movies (Zipf popularity)."""
        graph = small_imdb.graph
        actor_degrees = graph.degrees()[
            graph.nodes_with_label(graph.labelset.index("A"))
        ]
        assert actor_degrees.max() >= 5


class TestSampler:
    def test_bad_per_label(self, small_load):
        with pytest.raises(ValueError):
            sample_nodes_per_label(small_load.graph, 0)

    def test_caps_at_available(self):
        graph = star("M", ["A", "A", "K"])
        nodes, labels = sample_nodes_per_label(graph, 10, rng=0)
        # 1 M + 2 A + 1 K = 4 non-isolated nodes
        assert len(nodes) == 4


class TestDegreeCappedSampling:
    """Section 4.3.5: skipping top-degree roots."""

    def test_cap_excludes_hubs(self, small_load):
        graph = small_load.graph
        degrees = graph.degrees()
        nodes, _ = sample_nodes_per_label(
            graph, 50, rng=0, max_degree_percentile=90.0
        )
        cap = np.percentile(degrees[degrees > 0], 90.0)
        assert np.all(degrees[nodes] <= cap)

    def test_cap_100_equals_uncapped(self, small_load):
        graph = small_load.graph
        a = sample_nodes_per_label(graph, 10, rng=3)[0]
        b = sample_nodes_per_label(graph, 10, rng=3, max_degree_percentile=100.0)[0]
        assert np.array_equal(a, b)

    def test_all_hub_label_falls_back(self):
        """A label whose every member is a hub must still be sampled."""
        hub_world = star("M", ["A"] * 30)
        nodes, labels = sample_nodes_per_label(
            hub_world, 5, rng=0, max_degree_percentile=50.0
        )
        # M (the hub) still appears despite exceeding the cap.
        m_index = hub_world.labelset.index("M")
        assert m_index in labels

    def test_bad_percentile(self, small_load):
        with pytest.raises(ValueError):
            sample_nodes_per_label(small_load.graph, 5, max_degree_percentile=0.0)
        with pytest.raises(ValueError):
            sample_nodes_per_label(small_load.graph, 5, max_degree_percentile=101.0)


class TestRankDigraph:
    """Directed MAG view for the Section 5 ablation."""

    def test_same_shadow_as_undirected(self, small_mag):
        graph = small_mag.build_rank_graph("KDD", 2013)
        digraph = small_mag.build_rank_digraph("KDD", 2013)
        assert digraph.num_nodes == graph.num_nodes
        assert digraph.num_edges == graph.num_edges

    def test_citations_directed_others_symmetric(self, small_mag):
        digraph = small_mag.build_rank_digraph("KDD", 2013)
        out_role = digraph.roleset.index("out")
        in_role = digraph.roleset.index("in")
        und_role = digraph.roleset.index("und")
        paper = digraph.labelset.index("P")
        for edge in digraph.edges():
            lu = digraph.label_of(edge.u)
            lv = digraph.label_of(edge.v)
            if lu == paper and lv == paper:
                assert {edge.role_u, edge.role_v} == {out_role, in_role}
            else:
                assert edge.role_u == edge.role_v == und_role

    def test_citation_orientation_matches_references(self, small_mag):
        """The 'out' endpoint of a citation edge is the citing paper."""
        digraph = small_mag.build_rank_digraph("KDD", 2014)
        out_role = digraph.roleset.index("out")
        paper = digraph.labelset.index("P")
        ids = [digraph._ids[i] for i in range(digraph.num_nodes)]
        checked = 0
        for edge in digraph.edges():
            if digraph.label_of(edge.u) == paper and digraph.label_of(edge.v) == paper:
                citing_idx = edge.u if edge.role_u == out_role else edge.v
                cited_idx = edge.v if citing_idx == edge.u else edge.u
                citing, cited = ids[citing_idx], ids[cited_idx]
                assert cited in small_mag.papers[citing].references
                checked += 1
        assert checked > 0

    def test_typed_census_totals_match_undirected(self, small_mag):
        from repro.core import CensusConfig, subgraph_census
        from repro.extensions import typed_subgraph_census

        graph = small_mag.build_rank_graph("KDD", 2013)
        digraph = small_mag.build_rank_digraph("KDD", 2013)
        root = small_mag.institutions[0]
        undirected = subgraph_census(graph, graph.index(root), CensusConfig(max_edges=3))
        typed = typed_subgraph_census(digraph, digraph.index(root), max_edges=3)
        assert sum(typed.values()) == sum(undirected.values())
        assert len(typed) >= len(undirected)
