"""Unit tests for the alias sampling table."""

import numpy as np
import pytest

from repro.embeddings.alias import AliasTable


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasTable([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasTable([1.0, -1.0])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            AliasTable([0.0, 0.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            AliasTable(np.ones((2, 2)))


class TestSampling:
    def test_scalar_sample(self):
        table = AliasTable([1.0, 1.0])
        rng = np.random.default_rng(0)
        value = table.sample(rng)
        assert value in (0, 1)

    def test_uniform_distribution(self):
        table = AliasTable(np.ones(4))
        rng = np.random.default_rng(1)
        draws = table.sample(rng, 40_000)
        frequencies = np.bincount(draws, minlength=4) / 40_000
        assert np.allclose(frequencies, 0.25, atol=0.02)

    def test_skewed_distribution(self):
        weights = np.array([8.0, 1.0, 1.0])
        table = AliasTable(weights)
        rng = np.random.default_rng(2)
        draws = table.sample(rng, 50_000)
        frequencies = np.bincount(draws, minlength=3) / 50_000
        assert np.allclose(frequencies, weights / weights.sum(), atol=0.02)

    def test_degenerate_single_outcome(self):
        table = AliasTable([0.0, 5.0, 0.0])
        rng = np.random.default_rng(3)
        draws = table.sample(rng, 1000)
        assert set(draws) == {1}

    def test_deterministic_given_rng(self):
        table = AliasTable([1.0, 2.0, 3.0])
        a = table.sample(np.random.default_rng(7), 100)
        b = table.sample(np.random.default_rng(7), 100)
        assert np.array_equal(a, b)

    def test_single_element(self):
        table = AliasTable([2.0])
        assert table.sample(np.random.default_rng(0)) == 0


class TestUniformFastPath:
    """All-equal weights skip the coin flip but keep the same distribution."""

    def test_uniform_flag_set(self):
        assert AliasTable(np.ones(5))._uniform
        assert not AliasTable([1.0, 2.0])._uniform

    def test_uniform_draws_cover_support(self):
        table = AliasTable(np.full(6, 3.5))
        draws = table.sample(np.random.default_rng(0), 20_000)
        frequencies = np.bincount(draws, minlength=6) / 20_000
        assert np.allclose(frequencies, 1 / 6, atol=0.02)

    def test_uniform_deterministic(self):
        table = AliasTable(np.ones(8))
        a = table.sample(np.random.default_rng(4), 50)
        b = table.sample(np.random.default_rng(4), 50)
        assert np.array_equal(a, b)

    def test_uniform_scalar(self):
        assert AliasTable(np.ones(3)).sample(np.random.default_rng(1)) in (0, 1, 2)
