"""Unit tests for OLS, ridge, and Bayesian ridge regression."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.bayes import BayesianRidge
from repro.ml.linear import LinearRegression, Ridge


def _linear_data(n=200, p=5, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    w = rng.normal(size=p)
    y = X @ w + 2.5 + noise * rng.normal(size=n)
    return X, y, w


class TestLinearRegression:
    def test_recovers_coefficients(self):
        X, y, w = _linear_data(noise=0.0)
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, w, atol=1e-8)
        assert model.intercept_ == pytest.approx(2.5, abs=1e-8)

    def test_high_r2_with_noise(self):
        X, y, _ = _linear_data()
        model = LinearRegression().fit(X[:150], y[:150])
        assert model.score(X[150:], y[150:]) > 0.99

    def test_no_intercept(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = 3.0 * X.ravel()
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(3.0)

    def test_collinear_features_do_not_crash(self):
        X = np.column_stack([np.arange(20.0), np.arange(20.0) * 2])
        y = np.arange(20.0)
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-8)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.ones((2, 2)))

    def test_feature_mismatch(self):
        X, y, _ = _linear_data()
        model = LinearRegression().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.ones((2, 3)))

    def test_nan_input_rejected(self):
        X = np.ones((5, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            LinearRegression().fit(X, np.ones(5))


class TestRidge:
    def test_alpha_zero_matches_ols(self):
        X, y, _ = _linear_data()
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=0.0).fit(X, y)
        assert np.allclose(ols.coef_, ridge.coef_, atol=1e-6)

    def test_shrinkage_monotone(self):
        X, y, _ = _linear_data()
        norms = [
            np.linalg.norm(Ridge(alpha=a).fit(X, y).coef_)
            for a in (0.0, 1.0, 100.0, 10_000.0)
        ]
        assert norms == sorted(norms, reverse=True)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0)

    def test_predict_shape(self):
        X, y, _ = _linear_data()
        model = Ridge().fit(X, y)
        assert model.predict(X).shape == (X.shape[0],)


class TestBayesianRidge:
    def test_matches_ols_on_clean_data(self):
        X, y, w = _linear_data(noise=0.01)
        model = BayesianRidge().fit(X, y)
        assert np.allclose(model.coef_, w, atol=0.05)

    def test_estimates_noise_precision(self):
        """alpha_ should approximate the inverse noise variance."""
        noise = 0.5
        X, y, _ = _linear_data(n=2000, noise=noise, seed=1)
        model = BayesianRidge().fit(X, y)
        assert model.alpha_ == pytest.approx(1.0 / noise**2, rel=0.2)

    def test_shrinks_more_than_ols_when_underdetermined(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(10, 30))
        y = rng.normal(size=10)
        bayes = BayesianRidge().fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert np.linalg.norm(bayes.coef_) < np.linalg.norm(ols.coef_) + 1e-9

    def test_predict_with_std(self):
        X, y, _ = _linear_data()
        model = BayesianRidge().fit(X, y)
        mean, std = model.predict(X[:5], return_std=True)
        assert mean.shape == (5,)
        assert std.shape == (5,)
        assert np.all(std > 0)

    def test_extrapolation_has_higher_std(self):
        X, y, _ = _linear_data()
        model = BayesianRidge().fit(X, y)
        _, near = model.predict(np.zeros((1, X.shape[1])), return_std=True)
        _, far = model.predict(np.full((1, X.shape[1]), 50.0), return_std=True)
        assert far[0] > near[0]

    def test_converges_and_reports_iterations(self):
        X, y, _ = _linear_data()
        model = BayesianRidge().fit(X, y)
        assert 1 <= model.n_iter_ <= model.max_iter

    def test_bad_max_iter(self):
        with pytest.raises(ValueError):
            BayesianRidge(max_iter=0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            BayesianRidge().predict(np.ones((2, 2)))
