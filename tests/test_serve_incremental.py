"""Randomized parity: incremental census repair vs cold full recompute.

The serving layer's central claim is that after any sequence of edge
mutations, every tracked root's census — repaired incrementally via the
d_max-ball (:func:`repro.serve.repair.repair_ball`) — is **bit-identical**
to a census computed from scratch on the mutated graph.  These tests
drive k random insertions/deletions through
:meth:`FeatureService.apply_mutation` and compare every root, for every
exact engine, at ``n_jobs`` in {1, 2}, in both serving variants
(plain and masked-start-label).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CensusConfig, MutableHeteroGraph, SubgraphFeatureExtractor
from repro.core.graph import HeteroGraph
from repro.exceptions import GraphError
from repro.runtime import EXACT_ENGINES
from repro.serve import FeatureService, ServeConfig, repair_ball
from repro.serve.service import VARIANTS


def _random_graph(seed: int = 0, mean_degree: float = 3.0) -> HeteroGraph:
    from repro.datasets.synthetic import affinity_graph

    return affinity_graph(
        label_sizes={"a": 16, "b": 14, "c": 10},
        affinity={("a", "b"): 1.0, ("b", "c"): 0.7, ("a", "c"): 0.3},
        mean_degree=mean_degree,
        rng=np.random.default_rng(seed),
    )


def _apply_random_mutations(
    service: FeatureService, k: int, seed: int
) -> list[tuple[str, object, object]]:
    """Drive ``k`` valid random mutations through the service."""
    rng = np.random.default_rng(seed)
    ids = service.graph.node_ids
    n = service.graph.num_nodes
    edges = {(u, v) for u, v in service.graph.edges()}
    applied = []
    for _ in range(k):
        if edges and rng.random() < 0.5:
            u, v = sorted(edges)[int(rng.integers(len(edges)))]
            service.apply_mutation("remove_edge", ids[u], ids[v])
            edges.discard((u, v))
            applied.append(("remove_edge", ids[u], ids[v]))
        else:
            while True:
                u, v = (int(x) for x in rng.integers(n, size=2))
                key = (u, v) if u < v else (v, u)
                if u != v and key not in edges:
                    break
            service.apply_mutation("add_edge", ids[u], ids[v])
            edges.add(key)
            applied.append(("add_edge", ids[u], ids[v]))
    return applied


def _assert_bit_identical(service: FeatureService) -> None:
    """Every tracked census must equal a cold recompute on a fresh graph."""
    cold_graph = service.graph.snapshot()
    for variant in VARIANTS:
        config = service._census_configs[variant]
        extractor = SubgraphFeatureExtractor(config)
        cold = extractor.census_many(cold_graph, list(range(cold_graph.num_nodes)))
        for root, expected in enumerate(cold):
            got = service.census(variant, root)
            assert dict(got) == dict(expected), (
                f"variant={variant} root={root}: repaired census diverged "
                f"from cold recompute"
            )


class TestIncrementalParity:
    @pytest.mark.parametrize("engine", EXACT_ENGINES)
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_random_mutations_bit_identical(self, engine, n_jobs):
        graph = _random_graph(seed=11)
        service = FeatureService(
            graph, ServeConfig(emax=3, dmax=None, engine=engine, n_jobs=n_jobs)
        )
        service.warm()
        applied = _apply_random_mutations(service, k=8, seed=23)
        assert len(applied) == 8
        _assert_bit_identical(service)

    def test_parity_with_hub_cutoff(self):
        # d_max pruning is where the repair-ball math is subtle (endpoint
        # exemption, hubs-as-leaves) — exercise it explicitly.
        graph = _random_graph(seed=5, mean_degree=4.0)
        service = FeatureService(graph, ServeConfig(emax=3, dmax=4))
        service.warm()
        _apply_random_mutations(service, k=10, seed=41)
        _assert_bit_identical(service)

    def test_parity_larger_emax(self):
        graph = _random_graph(seed=2, mean_degree=2.5)
        service = FeatureService(graph, ServeConfig(emax=4, dmax=5))
        service.warm()
        _apply_random_mutations(service, k=4, seed=7)
        _assert_bit_identical(service)

    def test_mutation_repairs_only_ball(self):
        graph = _random_graph(seed=3)
        service = FeatureService(graph, ServeConfig(emax=3))
        service.warm()
        before = service.stats()["repaired_roots"]
        ids = service.graph.node_ids
        edges = {(u, v) for u, v in service.graph.edges()}
        rng = np.random.default_rng(0)
        while True:
            u, v = (int(x) for x in rng.integers(service.graph.num_nodes, size=2))
            if u != v and (min(u, v), max(u, v)) not in edges:
                break
        result = service.apply_mutation("add_edge", ids[u], ids[v])
        # The repaired set is exactly the ball; on a sparse graph that is
        # a strict subset of all roots.
        assert result["repaired_roots"] == result["ball_size"] * len(VARIANTS)
        assert result["ball_size"] < service.graph.num_nodes
        assert service.stats()["repaired_roots"] - before == result["repaired_roots"]


class TestRepairBall:
    def test_ball_radius_is_emax_minus_one(self):
        # Path p0-p1-p2-p3-p4-p5; mutate around the middle edge (p2, p3).
        labels = {f"p{i}": "A" for i in range(6)}
        edges = [(f"p{i}", f"p{i+1}") for i in range(5)]
        graph = HeteroGraph.from_edges(labels, edges)
        u, v = graph.index("p2"), graph.index("p3")
        ball = repair_ball(graph, u, v, CensusConfig(max_edges=2))
        # Radius 1 from {p2, p3}.
        assert ball == {graph.index(p) for p in ("p1", "p2", "p3", "p4")}
        ball = repair_ball(graph, u, v, CensusConfig(max_edges=3))
        assert ball == set(range(6))

    def test_hub_interior_not_expanded(self):
        # Star centre h (degree 4 > dmax) sits between the mutated edge
        # and the far node: h joins the ball, nodes behind it do not.
        labels = {n: "A" for n in ("u", "v", "h", "s1", "s2", "far")}
        edges = [("u", "v"), ("v", "h"), ("h", "s1"), ("h", "s2"), ("h", "far")]
        graph = HeteroGraph.from_edges(labels, edges)
        config = CensusConfig(max_edges=4, max_degree=3)
        ball = repair_ball(graph, graph.index("u"), graph.index("v"), config)
        assert graph.index("h") in ball
        assert graph.index("far") not in ball

    def test_endpoints_exempt_from_hub_pruning(self):
        # Endpoint v is itself a hub; its neighbours must still enter the
        # ball because the mutation flips v's degree.
        labels = {n: "A" for n in ("u", "v", "n1", "n2", "n3", "n4")}
        edges = [("u", "v")] + [("v", f"n{i}") for i in range(1, 5)]
        graph = HeteroGraph.from_edges(labels, edges)
        config = CensusConfig(max_edges=3, max_degree=2)
        ball = repair_ball(graph, graph.index("u"), graph.index("v"), config)
        for i in range(1, 5):
            assert graph.index(f"n{i}") in ball


class TestMutableGraphParity:
    def test_mutations_match_from_edges_rebuild(self):
        graph = _random_graph(seed=9)
        mutable = MutableHeteroGraph.from_graph(graph)
        rng = np.random.default_rng(17)
        edges = {(u, v) for u, v in graph.edges()}
        ids = graph.node_ids
        for _ in range(20):
            if edges and rng.random() < 0.5:
                u, v = sorted(edges)[int(rng.integers(len(edges)))]
                mutable.remove_edge(ids[u], ids[v])
                edges.discard((u, v))
            else:
                while True:
                    u, v = (int(x) for x in rng.integers(graph.num_nodes, size=2))
                    key = (u, v) if u < v else (v, u)
                    if u != v and key not in edges:
                        break
                mutable.add_edge(ids[u], ids[v])
                edges.add(key)
        names = graph.labelset.names
        rebuilt = HeteroGraph.from_edges(
            {ids[i]: names[int(graph.labels[i])] for i in range(graph.num_nodes)},
            [(ids[u], ids[v]) for u, v in sorted(edges)],
        )
        assert mutable.num_edges == rebuilt.num_edges
        assert mutable.fingerprint() == rebuilt.fingerprint()
        for node in range(graph.num_nodes):
            assert np.array_equal(
                mutable.neighbors(node), rebuilt.neighbors(node)
            )

    def test_apply_mutation_validates(self):
        graph = _random_graph(seed=1)
        service = FeatureService(graph, ServeConfig(emax=3))
        ids = service.graph.node_ids
        u, v = next(iter(service.graph.edges()))
        from repro.serve import ServeError

        with pytest.raises(GraphError):
            service.apply_mutation("add_edge", ids[u], ids[v])  # duplicate
        with pytest.raises(GraphError):
            service.apply_mutation("add_edge", ids[u], ids[u])  # self loop
        with pytest.raises(ServeError) as excinfo:
            service.apply_mutation("add_edge", "no-such-node", ids[v])
        assert excinfo.value.code == "unknown_node"
        removed = service.apply_mutation("remove_edge", ids[u], ids[v])
        assert removed["op"] == "remove_edge"
        with pytest.raises(GraphError):
            service.apply_mutation("remove_edge", ids[u], ids[v])  # gone
