"""Unit tests for the dependency-free CSR container."""

from collections import Counter

import numpy as np
import pytest

from repro.core.sparse import CSRMatrix
from repro.exceptions import FeatureError


def _random_dense(rows=7, cols=11, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.integers(1, 9, size=(rows, cols)).astype(np.float64)
    dense[rng.random((rows, cols)) > density] = 0.0
    return dense


class TestConstructors:
    def test_from_counters_matches_dense_builder(self):
        index = {"a": 0, "b": 1, "c": 2}
        censuses = [Counter(a=2, c=5), Counter(), Counter(b=1)]
        matrix = CSRMatrix.from_counters(censuses, index, 3)
        expected = np.array([[2.0, 0.0, 5.0], [0.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        assert matrix.shape == (3, 3)
        assert np.array_equal(matrix.toarray(), expected)

    def test_from_counters_drops_unindexed_keys(self):
        matrix = CSRMatrix.from_counters([Counter(a=1, zz=9)], {"a": 0}, 1)
        assert matrix.nnz == 1
        assert np.array_equal(matrix.toarray(), [[1.0]])

    def test_from_counters_sorts_columns_within_row(self):
        index = {"x": 2, "y": 0, "z": 1}
        matrix = CSRMatrix.from_counters([Counter(x=1, y=2, z=3)], index, 3)
        assert np.array_equal(matrix.indices, [0, 1, 2])
        assert np.array_equal(matrix.data, [2.0, 3.0, 1.0])

    def test_from_dense_roundtrip_exact(self):
        dense = _random_dense()
        matrix = CSRMatrix.from_dense(dense)
        assert matrix.nnz == np.count_nonzero(dense)
        assert np.array_equal(matrix.toarray(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(FeatureError):
            CSRMatrix.from_dense(np.arange(4.0))

    def test_invalid_indptr_rejected(self):
        with pytest.raises(FeatureError):
            CSRMatrix(np.ones(2), np.array([0, 1]), np.array([0, 2]), (2, 2))

    def test_column_out_of_range_rejected(self):
        with pytest.raises(FeatureError):
            CSRMatrix(np.ones(1), np.array([5]), np.array([0, 1]), (1, 2))


class TestBasics:
    def test_with_data_keeps_pattern(self):
        matrix = CSRMatrix.from_dense(_random_dense())
        logged = matrix.with_data(np.log1p(matrix.data))
        assert np.array_equal(logged.indices, matrix.indices)
        assert np.array_equal(logged.toarray(), np.log1p(matrix.toarray()))

    def test_with_data_rejects_wrong_nnz(self):
        matrix = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(FeatureError):
            matrix.with_data(np.ones(5))

    def test_len_and_repr(self):
        matrix = CSRMatrix.from_dense(np.eye(4))
        assert len(matrix) == 4
        assert "4x4" in repr(matrix)

    def test_copy_is_independent(self):
        matrix = CSRMatrix.from_dense(np.eye(2))
        clone = matrix.copy()
        clone.data[0] = 99.0
        assert matrix.data[0] == 1.0


class TestSlicing:
    def test_int_row_is_dense(self):
        dense = _random_dense()
        matrix = CSRMatrix.from_dense(dense)
        assert np.array_equal(matrix[3], dense[3])
        assert np.array_equal(matrix[-1], dense[-1])

    def test_slice_and_fancy_and_mask(self):
        dense = _random_dense()
        matrix = CSRMatrix.from_dense(dense)
        assert np.array_equal(matrix[1:5].toarray(), dense[1:5])
        picks = np.array([6, 0, 3])
        assert np.array_equal(matrix[picks].toarray(), dense[picks])
        mask = np.array([True, False] * 3 + [True])
        assert np.array_equal(matrix[mask].toarray(), dense[mask])

    def test_row_out_of_range(self):
        matrix = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(FeatureError):
            matrix.row(3)
        with pytest.raises(FeatureError):
            matrix[np.array([0, 5])]

    def test_mask_must_cover_rows(self):
        matrix = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(FeatureError):
            matrix[np.array([True, False])]


class TestStacking:
    def test_vstack_matches_numpy(self):
        a, b = _random_dense(seed=1), _random_dense(seed=2)
        stacked = CSRMatrix.vstack([CSRMatrix.from_dense(a), CSRMatrix.from_dense(b)])
        assert np.array_equal(stacked.toarray(), np.vstack([a, b]))

    def test_vstack_column_mismatch(self):
        with pytest.raises(FeatureError):
            CSRMatrix.vstack(
                [CSRMatrix.from_dense(np.eye(2)), CSRMatrix.from_dense(np.eye(3))]
            )

    def test_hstack_mixed_sparse_dense(self):
        a, b = _random_dense(seed=3), _random_dense(seed=4)
        stacked = CSRMatrix.hstack([CSRMatrix.from_dense(a), b])
        assert np.array_equal(stacked.toarray(), np.hstack([a, b]))

    def test_hstack_row_mismatch(self):
        with pytest.raises(FeatureError):
            CSRMatrix.hstack([np.eye(2), np.eye(3)])


class TestColumnStats:
    def test_column_support_counts_rows(self):
        dense = _random_dense()
        matrix = CSRMatrix.from_dense(dense)
        assert np.array_equal(matrix.column_support(), (dense != 0).sum(axis=0))

    def test_column_sums(self):
        dense = _random_dense()
        matrix = CSRMatrix.from_dense(dense)
        assert np.allclose(matrix.column_sums(), dense.sum(axis=0))
