"""Unit tests for the transport substrate (`repro.net`).

Endpoint parsing, framing/typed-error helpers, blob armouring, the
retry policy, and the synchronous :class:`NetClient` against a live
echo-style server on both transports — the pieces every higher layer
(serving daemon, shard workers, remote executor) builds on.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.net import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    Endpoint,
    NetClient,
    NetError,
    RetryPolicy,
    decode_blob,
    decode_message,
    encode_blob,
    error_response,
    ok_response,
    parse_endpoint,
    raise_for_error,
    require,
    serve_lines,
    start_listener,
)
from repro.obs import fresh_telemetry


class TestEndpoint:
    def test_parse_shorthands(self, tmp_path):
        sock = tmp_path / "x.sock"
        assert parse_endpoint(sock) == Endpoint("unix", path=str(sock))
        assert parse_endpoint(str(sock)) == Endpoint("unix", path=str(sock))
        assert parse_endpoint(f"unix:{sock}") == Endpoint("unix", path=str(sock))
        assert parse_endpoint("127.0.0.1:9000") == Endpoint(
            "tcp", host="127.0.0.1", port=9000
        )
        assert parse_endpoint("tcp:localhost:0") == Endpoint(
            "tcp", host="localhost", port=0
        )

    def test_colon_paths_stay_unix(self):
        # Only an all-digit suffix after the last colon means TCP.
        assert parse_endpoint("/tmp/odd:name.sock").kind == "unix"
        assert parse_endpoint("unix:/tmp/a:9000").kind == "unix"

    def test_round_trips_through_address(self, tmp_path):
        for spec in (tmp_path / "s.sock", "10.0.0.1:80", "tcp:h:1234"):
            endpoint = parse_endpoint(spec)
            assert parse_endpoint(endpoint.address) == endpoint

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_endpoint("")
        with pytest.raises(ValueError):
            parse_endpoint("tcp:no-port")
        with pytest.raises(ValueError):
            parse_endpoint(42)
        with pytest.raises(ValueError):
            Endpoint("tcp", host="h", port=70000)
        with pytest.raises(ValueError):
            Endpoint("carrier-pigeon")


class TestProtocol:
    def test_decode_message_contract(self):
        assert decode_message(b'{"op": "ping"}\n') == {"op": "ping"}
        for raw in (b"\xff\xfe\n", b"[1]\n", b"3\n", b'{"op": 7}\n', b"{}\n"):
            with pytest.raises(NetError) as excinfo:
                decode_message(raw)
            assert excinfo.value.code == "bad_request"

    def test_responses_and_unwrap(self):
        import json

        ok = json.loads(ok_response(5, {"x": 1}))
        assert ok == {"id": 5, "ok": True, "result": {"x": 1}}
        assert raise_for_error(ok) == {"x": 1}

        err = json.loads(error_response(None, "overloaded", "busy"))
        assert err["error"]["code"] == "overloaded"
        with pytest.raises(NetError) as excinfo:
            raise_for_error(err)
        assert excinfo.value.code == "overloaded"
        assert excinfo.value.retryable

    def test_unknown_error_code_maps_to_internal(self):
        import json

        err = json.loads(error_response(1, "no_such_code", "?"))
        assert err["error"]["code"] == "internal"
        assert "internal" in ERROR_CODES

    def test_require(self):
        assert require({"op": "x", "n": "a"}, "n") == "a"
        assert require({"op": "x", "k": 2}, "k", int) == 2
        for bad in ({"op": "x"}, {"op": "x", "k": True}, {"op": "x", "k": "2"}):
            with pytest.raises(NetError):
                require(bad, "k", int)

    def test_blob_round_trip(self):
        payload = (Counter({("a", "b"): 3}), {"nested": [1, 2.5, None]})
        text = encode_blob(payload)
        assert isinstance(text, str)
        assert decode_blob(text) == payload

    def test_blob_rejects_corruption(self):
        for junk in ("not base64 at all!", "AAAA", encode_blob({})[:-4]):
            with pytest.raises(NetError) as excinfo:
                decode_blob(junk)
            assert excinfo.value.code == "bad_request"


class TestRetryPolicy:
    def test_delay_schedule(self):
        policy = RetryPolicy(retries=4, backoff=0.1, max_backoff=0.3)
        assert [policy.delay(i) for i in range(4)] == [0.1, 0.2, 0.3, 0.3]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)


def _echo_server(endpoint, ready_box: dict, stop_box: dict) -> None:
    """Serve in a thread: echo each request's id back, ``fail`` op closes."""

    async def main():
        async def handle_line(line: bytes) -> bytes:
            request = decode_message(line)
            if request["op"] == "slow":
                await asyncio.sleep(request.get("delay", 0.5))
            return ok_response(request.get("id"), {"op": request["op"]})

        async def on_connect(reader, writer):
            await serve_lines(reader, writer, handle_line)

        listener = await start_listener(endpoint, on_connect)
        stop = asyncio.Event()
        stop_box["stop"] = lambda: asyncio.get_event_loop()  # placeholder
        loop = asyncio.get_running_loop()
        stop_box["stop"] = lambda: loop.call_soon_threadsafe(stop.set)
        ready_box["endpoint"] = listener.endpoint
        ready_box["ready"].set()
        await stop.wait()
        listener.close()
        await listener.wait_closed()

    asyncio.run(main())


@pytest.fixture(params=["unix", "tcp"])
def live_endpoint(request, tmp_path):
    """A live line-echo server on the requested transport."""
    spec = tmp_path / "echo.sock" if request.param == "unix" else "127.0.0.1:0"
    ready_box = {"ready": threading.Event()}
    stop_box = {}
    thread = threading.Thread(
        target=_echo_server, args=(spec, ready_box, stop_box), daemon=True
    )
    thread.start()
    assert ready_box["ready"].wait(5), "echo server failed to start"
    yield ready_box["endpoint"]
    stop_box["stop"]()
    thread.join(timeout=5)


class TestNetClient:
    def test_round_trip_and_telemetry(self, live_endpoint):
        with fresh_telemetry() as telemetry:
            with NetClient(live_endpoint) as client:
                assert client.call({"id": 1, "op": "ping"}) == {"op": "ping"}
                assert client.ping()["op"] == "ping"
            snapshot = telemetry.as_dict()
        assert snapshot["counters"]["net/requests"] == 2
        assert snapshot["counters"]["net/connects"] == 1
        assert snapshot["distributions"]["net/request_s"]["count"] == 2

    def test_listener_resolves_ephemeral_port(self, live_endpoint):
        if live_endpoint.kind == "tcp":
            assert live_endpoint.port not in (None, 0)

    def test_request_timeout_raises_typed(self, live_endpoint):
        client = NetClient(
            live_endpoint, request_timeout=0.1, retry=RetryPolicy(retries=0)
        )
        with fresh_telemetry():
            with pytest.raises(NetError) as excinfo:
                client.call({"op": "slow", "delay": 2.0})
        assert excinfo.value.code == "timeout"
        client.close()

    def test_reconnects_after_failure(self, live_endpoint):
        with fresh_telemetry() as telemetry:
            client = NetClient(live_endpoint)
            assert client.call({"op": "ping"}) == {"op": "ping"}
            # Sever the transport under the client; the next request
            # must reconnect transparently and succeed.
            client._sock.close()
            assert client.call({"op": "ping"}) == {"op": "ping"}
            client.close()
            counters = telemetry.as_dict()["counters"]
        assert counters["net/connects"] >= 2

    def test_unreachable_peer_is_unavailable(self, tmp_path):
        client = NetClient(
            tmp_path / "nobody-home.sock",
            connect_timeout=0.2,
            retry=RetryPolicy(retries=1, backoff=0.01),
        )
        with fresh_telemetry() as telemetry:
            started = time.perf_counter()
            with pytest.raises(NetError) as excinfo:
                client.ping()
            elapsed = time.perf_counter() - started
            counters = telemetry.as_dict()["counters"]
        assert excinfo.value.code == "unavailable"
        assert excinfo.value.retryable
        assert counters["net/retries"] == 1
        assert counters["net/unavailable"] == 1
        assert elapsed < 5.0

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            NetClient(tmp_path / "x.sock", connect_timeout=0)
        with pytest.raises(ValueError):
            NetClient(tmp_path / "x.sock", request_timeout=-1)


class TestListener:
    def test_unix_socket_unlinked_on_close(self, tmp_path):
        sock = tmp_path / "gone.sock"

        async def main():
            listener = await start_listener(sock, lambda r, w: None)
            assert sock.exists()
            listener.close()
            await listener.wait_closed()

        asyncio.run(main())
        assert not sock.exists()

    def test_stale_socket_file_is_replaced(self, tmp_path):
        sock = tmp_path / "stale.sock"
        sock.touch()  # a dead daemon's leftover

        async def main():
            listener = await start_listener(sock, lambda r, w: None)
            listener.close()
            await listener.wait_closed()

        asyncio.run(main())
        assert not sock.exists()

    def test_max_line_bytes_is_shared_constant(self):
        from repro.serve.daemon import MAX_LINE_BYTES as daemon_limit

        assert daemon_limit == MAX_LINE_BYTES
