"""Unit tests for CART trees."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    _resolve_max_features,
)


class TestMaxFeaturesSpec:
    def test_none_means_all(self):
        assert _resolve_max_features(None, 10) == 10

    def test_sqrt(self):
        assert _resolve_max_features("sqrt", 16) == 4

    def test_log2(self):
        assert _resolve_max_features("log2", 16) == 4

    def test_fraction(self):
        assert _resolve_max_features(0.5, 10) == 5

    def test_int_clamped(self):
        assert _resolve_max_features(100, 10) == 10

    def test_small_fraction_clamps_to_one(self):
        # Regression: 0.01 * 10 would round to 0 candidate columns and the
        # builder would never find a split; the resolver must keep >= 1.
        assert _resolve_max_features(0.01, 10) == 1
        assert _resolve_max_features(0.05, 12) == 1

    def test_full_fraction_means_all(self):
        assert _resolve_max_features(1.0, 10) == 10

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            _resolve_max_features(0, 10)
        with pytest.raises(ValueError):
            _resolve_max_features(1.5, 10)
        with pytest.raises(ValueError):
            _resolve_max_features("weird", 10)

    def test_non_positive_float_raises(self):
        with pytest.raises(ValueError):
            _resolve_max_features(0.0, 10)
        with pytest.raises(ValueError):
            _resolve_max_features(-0.3, 10)

    def test_bool_rejected(self):
        with pytest.raises(ValueError):
            _resolve_max_features(True, 10)


class TestRegressor:
    def test_memorises_training_data_when_unconstrained(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_learns_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X.ravel() > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert tree.score(X, y) > 0.99

    def test_max_depth_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 4))
        y = rng.normal(size=200)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert tree.tree_depth_ <= 3

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(64, 2))
        y = rng.normal(size=64)
        tree = DecisionTreeRegressor(min_samples_leaf=8).fit(X, y)

        def leaf_sizes(node_id):
            node = tree._nodes[node_id]
            if node.feature == -1:
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(0)) >= 8

    def test_constant_target_single_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        tree = DecisionTreeRegressor().fit(X, np.full(10, 3.0))
        assert tree.n_leaves_ == 1
        assert np.allclose(tree.predict(X), 3.0)

    def test_feature_importances_identify_signal(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 5))
        y = 5.0 * X[:, 2] + 0.01 * rng.normal(size=300)
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 2
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_duplicate_feature_values_handled(self):
        X = np.array([[1.0], [1.0], [1.0], [2.0]])
        y = np.array([0.0, 0.0, 0.0, 1.0])
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.predict(np.array([[2.0]]))[0] == pytest.approx(1.0)

    def test_all_identical_features_yield_leaf(self):
        X = np.ones((10, 2))
        y = np.arange(10, dtype=float)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.n_leaves_ == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.ones((2, 2)))

    def test_feature_count_mismatch(self):
        tree = DecisionTreeRegressor().fit(np.ones((5, 2)), np.arange(5.0))
        with pytest.raises(ValueError):
            tree.predict(np.ones((2, 3)))


class TestClassifier:
    def _blobs(self, seed=0, n=120):
        rng = np.random.default_rng(seed)
        X = np.vstack([
            rng.normal(loc=0.0, size=(n, 2)),
            rng.normal(loc=4.0, size=(n, 2)),
        ])
        y = np.array(["low"] * n + ["high"] * n)
        return X, y

    def test_separates_blobs(self):
        X, y = self._blobs()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_predict_proba_sums_to_one(self):
        X, y = self._blobs()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        probabilities = tree.predict_proba(X)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_classes_sorted(self):
        X, y = self._blobs()
        tree = DecisionTreeClassifier().fit(X, y)
        assert list(tree.classes_) == ["high", "low"]

    def test_three_classes(self):
        rng = np.random.default_rng(1)
        X = np.vstack([rng.normal(loc=c, size=(60, 2)) for c in (0, 3, 6)])
        y = np.repeat([0, 1, 2], 60)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert tree.score(X, y) > 0.9

    def test_pure_node_is_leaf(self):
        X = np.arange(6, dtype=float).reshape(-1, 1)
        y = np.zeros(6)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.n_leaves_ == 1

    def test_y_length_mismatch(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.ones((5, 2)), np.zeros(4))

    def test_string_and_int_labels(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        for labels in (np.array([0, 0, 1, 1]), np.array(["a", "a", "b", "b"])):
            tree = DecisionTreeClassifier().fit(X, labels)
            assert tree.predict(X).tolist() == labels.tolist()
