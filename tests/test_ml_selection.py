"""Unit tests for univariate feature selection."""

import numpy as np
import pytest

from repro.ml.selection import SelectKBest, f_classif_scores, f_regression_scores


def _regression_data(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(200, 6))
    y = 3.0 * X[:, 1] - 2.0 * X[:, 4] + 0.1 * rng.normal(size=200)
    return X, y


class TestFRegression:
    def test_signal_columns_score_highest(self):
        X, y = _regression_data()
        scores = f_regression_scores(X, y)
        top_two = set(np.argsort(scores)[-2:])
        assert top_two == {1, 4}

    def test_constant_feature_scores_zero(self):
        X, y = _regression_data()
        X = np.column_stack([X, np.ones(X.shape[0])])
        scores = f_regression_scores(X, y)
        assert scores[-1] == 0.0

    def test_perfectly_collinear_feature_finite(self):
        rng = np.random.default_rng(1)
        y = rng.normal(size=50)
        X = np.column_stack([y, rng.normal(size=50)])
        scores = f_regression_scores(X, y)
        assert np.all(np.isfinite(scores))
        assert scores[0] > scores[1]

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            f_regression_scores(np.ones((2, 2)), np.ones(2))

    def test_scores_nonnegative(self):
        X, y = _regression_data()
        assert np.all(f_regression_scores(X, y) >= 0)


class TestFClassif:
    def test_separating_feature_scores_highest(self):
        rng = np.random.default_rng(0)
        n = 100
        X = rng.normal(size=(2 * n, 3))
        X[:n, 0] += 5.0  # feature 0 separates the classes
        y = np.array([0] * n + [1] * n)
        scores = f_classif_scores(X, y)
        assert np.argmax(scores) == 0

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            f_classif_scores(np.ones((5, 2)), np.zeros(5))

    def test_three_classes(self):
        rng = np.random.default_rng(1)
        X = np.vstack([rng.normal(c, 1, (30, 2)) for c in (0, 2, 4)])
        y = np.repeat([0, 1, 2], 30)
        scores = f_classif_scores(X, y)
        assert scores.shape == (2,)
        assert np.all(scores > 0)

    def test_mismatched_y(self):
        with pytest.raises(ValueError):
            f_classif_scores(np.ones((5, 2)), np.zeros(4))


class TestSelectKBest:
    def test_selects_signal_columns(self):
        X, y = _regression_data()
        selector = SelectKBest(k=2).fit(X, y)
        assert set(selector.selected_) == {1, 4}

    def test_transform_keeps_column_order(self):
        X, y = _regression_data()
        selector = SelectKBest(k=2).fit(X, y)
        transformed = selector.transform(X)
        assert np.array_equal(transformed, X[:, sorted(selector.selected_)])

    def test_k_clamped_to_available(self):
        X, y = _regression_data()
        selector = SelectKBest(k=100).fit(X, y)
        assert selector.transform(X).shape[1] == X.shape[1]

    def test_bad_k(self):
        with pytest.raises(ValueError):
            SelectKBest(k=0)

    def test_transform_before_fit(self):
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            SelectKBest(k=1).transform(np.ones((2, 2)))

    def test_transform_feature_mismatch(self):
        X, y = _regression_data()
        selector = SelectKBest(k=2).fit(X, y)
        with pytest.raises(ValueError):
            selector.transform(np.ones((5, 3)))

    def test_classification_score_func(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 4))
        y = (X[:, 3] > 0).astype(int)
        selector = SelectKBest(k=1, score_func=f_classif_scores).fit(X, y)
        assert selector.selected_.tolist() == [3]

    def test_deterministic_tie_breaking(self):
        X = np.zeros((10, 3))
        y = np.arange(10.0)
        selector = SelectKBest(k=2).fit(X, y)
        assert selector.selected_.tolist() == [0, 1]
