"""Unit tests for NDCG, macro-F1, and regression metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    dcg,
    macro_f1,
    mean_absolute_error,
    mean_squared_error,
    ndcg_at,
    per_node_f1,
    precision_recall_f1,
    r2_score,
)


class TestDCG:
    def test_empty(self):
        assert dcg(np.array([])) == 0.0

    def test_single(self):
        assert dcg(np.array([3.0])) == pytest.approx(3.0)

    def test_discounting(self):
        # positions 1, 2: discounts log2(2)=1, log2(3)
        assert dcg(np.array([1.0, 1.0])) == pytest.approx(1.0 + 1.0 / np.log2(3))


class TestNDCG:
    def test_perfect_ranking_is_one(self):
        rel = np.array([5.0, 3.0, 1.0, 0.0])
        assert ndcg_at(rel, rel, 3) == pytest.approx(1.0)

    def test_monotone_transform_of_scores_invariant(self):
        rel = np.array([5.0, 3.0, 1.0, 0.0])
        assert ndcg_at(rel, rel * 100 + 7, 3) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        rel = np.array([10.0, 0.0, 0.0, 0.0])
        assert ndcg_at(rel, -rel, 2) < 0.5

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            rel = rng.random(30)
            scores = rng.random(30)
            value = ndcg_at(rel, scores, 20)
            assert 0.0 <= value <= 1.0

    def test_all_zero_relevance_is_one(self):
        assert ndcg_at(np.zeros(5), np.arange(5.0), 3) == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ndcg_at(np.ones(3), np.ones(4))

    def test_bad_n_raises(self):
        with pytest.raises(ValueError):
            ndcg_at(np.ones(3), np.ones(3), n=0)

    def test_paper_cutoff_20(self):
        """With fewer than n items the metric still works."""
        rel = np.array([3.0, 2.0, 1.0])
        assert ndcg_at(rel, rel, 20) == pytest.approx(1.0)


class TestClassification:
    def test_accuracy(self):
        assert accuracy(["a", "b", "a"], ["a", "b", "b"]) == pytest.approx(2 / 3)

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_precision_recall_f1_perfect(self):
        p, r, f = precision_recall_f1(["x", "y"], ["x", "y"], positive="x")
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_precision_recall_f1_zero_division(self):
        # class never predicted and never true -> all zeros, no crash
        p, r, f = precision_recall_f1(["x", "x"], ["x", "x"], positive="y")
        assert (p, r, f) == (0.0, 0.0, 0.0)

    def test_macro_f1_perfect(self):
        assert macro_f1(["a", "b", "c"], ["a", "b", "c"]) == pytest.approx(1.0)

    def test_macro_f1_penalises_invented_class(self):
        """Predicting a class that never occurs drags the average down."""
        balanced = macro_f1(["a", "a", "b", "b"], ["a", "a", "b", "b"])
        invented = macro_f1(["a", "a", "b", "b"], ["a", "a", "b", "c"])
        assert invented < balanced

    def test_macro_f1_unweighted_across_classes(self):
        """A rare class's F1 counts as much as a common class's."""
        y_true = ["a"] * 9 + ["b"]
        y_pred = ["a"] * 9 + ["a"]  # misses the single b completely
        # class a: P=0.9, R=1 -> F1~0.947; class b: 0 -> macro ~0.47
        assert macro_f1(y_true, y_pred) == pytest.approx((2 * 0.9 / 1.9 + 0) / 2)

    def test_per_node_f1_equals_accuracy(self):
        """The literal Eq. 7 collapses to accuracy for single-label nodes."""
        y_true = ["a", "b", "c", "a"]
        y_pred = ["a", "b", "a", "a"]
        assert per_node_f1(y_true, y_pred) == accuracy(y_true, y_pred)

    def test_confusion_matrix(self):
        classes, matrix = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert list(classes) == ["a", "b"]
        assert matrix.tolist() == [[1, 1], [0, 1]]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            macro_f1(["a"], ["a", "b"])


class TestRegression:
    def test_mse(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_r2_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_r2_mean_prediction_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_can_be_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.array([3.0, 3.0, -3.0])) < 0

    def test_r2_constant_target(self):
        y = np.array([2.0, 2.0])
        assert r2_score(y, y) == 1.0
        assert r2_score(y, np.array([1.0, 3.0])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])


class TestMicroF1:
    def test_single_label_equals_accuracy(self):
        from repro.ml.metrics import micro_f1

        y_true = ["a", "b", "c", "a", "b"]
        y_pred = ["a", "b", "a", "a", "c"]
        assert micro_f1(y_true, y_pred) == pytest.approx(accuracy(y_true, y_pred))

    def test_perfect(self):
        from repro.ml.metrics import micro_f1

        assert micro_f1([1, 2, 3], [1, 2, 3]) == 1.0

    def test_micro_weights_by_frequency(self):
        """Micro-F1 exceeds macro-F1 when the model only gets the common
        class right."""
        from repro.ml.metrics import micro_f1

        y_true = ["a"] * 9 + ["b"]
        y_pred = ["a"] * 10
        assert micro_f1(y_true, y_pred) > macro_f1(y_true, y_pred)
