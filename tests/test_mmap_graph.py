"""Randomized parity + format suite for the out-of-core mmap graph.

The contract under test mirrors the partitioned-census suite: an
:class:`~repro.core.mmap_graph.MmapGraph` opened from a ``.hmg`` file
must be *bit-identical* to its dict-backed twin under every census
engine, worker count, and config axis — masked roots, hub cut-offs, the
sampled estimator at a fixed ``(budget, seed)`` — because the storage
layer is an optimisation, not an approximation.  The suite also pins
the format-level guarantees (corrupt/truncated files fail loudly, the
buffered fallback works without ``mmap``) and the external-sort
ingester's fingerprint/adjacency parity with ``read_edgelist``.
"""

from __future__ import annotations

import json
import pickle
import random
import struct

import numpy as np
import pytest

import repro.core.mmap_graph as mmap_graph_module
from repro.core.census import CensusConfig, subgraph_census
from repro.core.features import SubgraphFeatureExtractor
from repro.core.graph import FlatGraph, HeteroGraph
from repro.core.labels import LabelSet
from repro.core.mmap_graph import HMG_MAGIC, MmapGraph, _PREAMBLE
from repro.core.sampled import SampledCensusConfig
from repro.dist import PartitionConfig, subgraph_census_sharded
from repro.exceptions import FeatureError, GraphError
from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.stream import build_mmap_graph, census_stream, write_mmap_graph
from repro.runtime.context import RunContext
from repro.runtime.store import ArtifactStore


def random_hetero_graph(seed: int) -> HeteroGraph:
    """A small random labelled graph; size and density vary with the seed."""
    rng = random.Random(seed)
    num_labels = rng.randint(2, 4)
    labels = "ABCD"[:num_labels]
    n = rng.randint(10, 26)
    nodes = {f"n{i}": rng.choice(labels) for i in range(n)}
    p = rng.uniform(0.10, 0.30)
    edges = [
        (f"n{i}", f"n{j}")
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    if not edges:
        edges = [("n0", "n1")]
    return HeteroGraph.from_edges(nodes, edges)


def hubby_graph() -> HeteroGraph:
    """A star-of-stars whose hub pruning must match across storages."""
    nodes = {"hub": "A"}
    edges = []
    for i in range(8):
        spoke = f"s{i}"
        nodes[spoke] = "B"
        edges.append(("hub", spoke))
        for j in range(3):
            leaf = f"s{i}_l{j}"
            nodes[leaf] = "C"
            edges.append((spoke, leaf))
    return HeteroGraph.from_edges(nodes, edges)


def as_mmap(graph: HeteroGraph, tmp_path, name: str = "g.hmg") -> MmapGraph:
    return MmapGraph(write_mmap_graph(graph, tmp_path / name))


def shuffled_roots(graph: HeteroGraph, seed: int) -> list[int]:
    rng = random.Random(seed)
    roots = list(range(graph.num_nodes))
    rng.shuffle(roots)
    roots = roots[: max(4, graph.num_nodes // 2)]
    return roots + [roots[0], roots[2], roots[0]]  # duplicates on purpose


# ---------------------------------------------------------------------------
# roundtrip + format validation
# ---------------------------------------------------------------------------


class TestRoundtrip:
    def test_structure_matches_dict_graph(self, tmp_path):
        graph = random_hetero_graph(3)
        mg = as_mmap(graph, tmp_path)
        assert mg.storage_kind == "mmap"
        assert mg.mmap_backed is True
        assert mg.num_nodes == graph.num_nodes
        assert mg.num_edges == graph.num_edges
        assert mg.labelset.names == graph.labelset.names
        assert mg.fingerprint() == graph.fingerprint()
        np.testing.assert_array_equal(mg.labels, graph.labels)
        np.testing.assert_array_equal(mg.degrees(), graph.degrees())
        np.testing.assert_array_equal(mg.label_counts(), graph.label_counts())
        for i in range(graph.num_nodes):
            assert list(mg.neighbors(i)) == list(graph.neighbors(i))
            assert mg.label_of(i) == graph.label_of(i)
            assert mg.degree(i) == graph.degree(i)
            assert mg.node_id(i) == graph.node_id(i)
        assert list(mg.edges()) == list(graph.edges())
        assert mg.node_ids == graph.node_ids

    def test_index_lookup_and_unknowns(self, tmp_path):
        graph = random_hetero_graph(4)
        mg = as_mmap(graph, tmp_path)
        for node_id in graph.node_ids:
            assert mg.index(node_id) == graph.index(node_id)
        with pytest.raises(GraphError, match="unknown node"):
            mg.index("nope")

    def test_flat_views_yield_plain_ints(self, tmp_path):
        """Census bit-identity rests on Counter keys built from ints."""
        graph = random_hetero_graph(5)
        flat = as_mmap(graph, tmp_path).flat()
        assert type(flat.labels[0]) is int
        assert type(flat.indptr[1]) is int
        assert type(flat.neighbors[0]) is int

    def test_has_edge(self, tmp_path):
        graph = random_hetero_graph(6)
        mg = as_mmap(graph, tmp_path)
        u, v = next(iter(graph.edges()))
        assert mg.has_edge(u, v) and mg.has_edge(v, u)
        non_adjacent = next(
            (a, b)
            for a in range(graph.num_nodes)
            for b in range(a + 1, graph.num_nodes)
            if not graph.has_edge(a, b)
        )
        assert not mg.has_edge(*non_adjacent)

    def test_without_stored_ids(self, tmp_path):
        graph = random_hetero_graph(7)
        path = write_mmap_graph(graph, tmp_path / "noids.hmg", store_ids=False)
        mg = MmapGraph(path)
        assert mg.node_id(2) == 2  # indices stand in for ids
        assert mg.index(2) == 2
        with pytest.raises(GraphError, match="without external node ids"):
            mg.index("n2")
        with pytest.raises(GraphError, match="out of range"):
            mg.node_id(graph.num_nodes)
        # The census contract is untouched by dropping the ids.
        config = CensusConfig(max_edges=3)
        for root in range(graph.num_nodes):
            assert subgraph_census(mg, root, config) == subgraph_census(
                graph, root, config
            )

    def test_context_manager_closes(self, tmp_path):
        graph = random_hetero_graph(8)
        with as_mmap(graph, tmp_path) as mg:
            assert mg.degree(0) == graph.degree(0)
        assert mg._buffer is None

    def test_pickle_ships_only_the_path(self, tmp_path):
        graph = random_hetero_graph(9)
        mg = as_mmap(graph, tmp_path)
        payload = pickle.dumps(mg)
        assert len(payload) < 200  # a path, not a graph
        clone = pickle.loads(payload)
        assert clone.path == mg.path
        assert clone.fingerprint() == graph.fingerprint()
        config = CensusConfig(max_edges=3)
        assert subgraph_census(clone, 0, config) == subgraph_census(
            graph, 0, config
        )


def _valid_file(tmp_path, name="v.hmg", seed=11):
    graph = random_hetero_graph(seed)
    return write_mmap_graph(graph, tmp_path / name)


def _rewrite_header(path, mutate) -> None:
    """Load the header JSON, apply ``mutate``, re-pad to the same length."""
    data = bytearray(path.read_bytes())
    _magic, header_len = _PREAMBLE.unpack_from(data, 0)
    start = _PREAMBLE.size
    header = json.loads(bytes(data[start: start + header_len]).decode("utf-8"))
    mutate(header)
    body = json.dumps(header, separators=(",", ":")).encode("utf-8")
    assert len(body) <= header_len
    data[start: start + header_len] = body + b" " * (header_len - len(body))
    path.write_bytes(bytes(data))


class TestCorruptFiles:
    def test_file_smaller_than_preamble(self, tmp_path):
        path = tmp_path / "tiny.hmg"
        path.write_bytes(b"HMG")
        with pytest.raises(GraphError, match="truncated"):
            MmapGraph(path)

    def test_bad_magic(self, tmp_path):
        path = _valid_file(tmp_path)
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTAGRPH"
        path.write_bytes(bytes(data))
        with pytest.raises(GraphError, match="not an .hmg graph file"):
            MmapGraph(path)

    def test_header_overruns_file(self, tmp_path):
        path = tmp_path / "overrun.hmg"
        path.write_bytes(_PREAMBLE.pack(HMG_MAGIC, 1 << 20) + b"{}")
        with pytest.raises(GraphError, match="truncated"):
            MmapGraph(path)

    def test_corrupt_header_json(self, tmp_path):
        path = _valid_file(tmp_path)
        data = bytearray(path.read_bytes())
        data[_PREAMBLE.size] = ord("X")  # breaks the opening brace
        path.write_bytes(bytes(data))
        with pytest.raises(GraphError, match="corrupt .hmg header"):
            MmapGraph(path)

    def test_missing_header_keys(self, tmp_path):
        path = _valid_file(tmp_path)
        _rewrite_header(path, lambda header: header.pop("arrays"))
        with pytest.raises(GraphError, match="missing keys"):
            MmapGraph(path)

    def test_unsupported_version(self, tmp_path):
        path = _valid_file(tmp_path)
        _rewrite_header(path, lambda header: header.update(version=99))
        with pytest.raises(GraphError, match="unsupported .hmg version 99"):
            MmapGraph(path)

    def test_truncated_sections(self, tmp_path):
        path = _valid_file(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(GraphError, match="truncated|spans bytes"):
            MmapGraph(path)

    def test_section_count_mismatch(self, tmp_path):
        path = _valid_file(tmp_path)

        def shrink(header):
            offset, count = header["arrays"]["labels"]
            header["arrays"]["labels"] = [offset, count - 1]

        _rewrite_header(path, shrink)
        with pytest.raises(GraphError, match="section 'labels'"):
            MmapGraph(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError, match="cannot open"):
            MmapGraph(tmp_path / "absent.hmg")


class TestMmapFallback:
    def test_buffered_fallback_without_mmap(self, tmp_path, monkeypatch):
        graph = random_hetero_graph(12)
        path = write_mmap_graph(graph, tmp_path / "fb.hmg")
        monkeypatch.setattr(mmap_graph_module, "_mmap_module", None)
        mg = MmapGraph(path)
        assert mg.mmap_backed is False
        assert mg.fingerprint() == graph.fingerprint()
        config = CensusConfig(max_edges=3, mask_start_label=True)
        for root in range(graph.num_nodes):
            assert subgraph_census(mg, root, config) == subgraph_census(
                graph, root, config
            )


# ---------------------------------------------------------------------------
# census parity: mmap == dict, bit for bit
# ---------------------------------------------------------------------------


class TestCensusParity:
    @pytest.mark.parametrize("engine", ("fast", "reference"))
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_parity(self, tmp_path, engine, seed):
        graph = random_hetero_graph(seed)
        mg = as_mmap(graph, tmp_path)
        rng = random.Random(seed + 500)
        config = CensusConfig(
            max_edges=3,
            max_degree=rng.choice([None, 3, 5]),
            mask_start_label=seed % 3 == 0,
            group_by_label=rng.random() < 0.5,
        )
        for root in shuffled_roots(graph, seed):
            expected = subgraph_census(graph, root, config, engine=engine)
            assert subgraph_census(mg, root, config, engine=engine) == expected

    @pytest.mark.parametrize("max_degree", (None, 2, 4))
    def test_hub_graph_parity(self, tmp_path, max_degree):
        graph = hubby_graph()
        mg = as_mmap(graph, tmp_path)
        config = CensusConfig(max_edges=3, max_degree=max_degree)
        for root in range(graph.num_nodes):
            assert subgraph_census(mg, root, config) == subgraph_census(
                graph, root, config
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_sampled_parity_at_fixed_budget_and_seed(self, tmp_path, seed):
        graph = random_hetero_graph(seed + 40)
        mg = as_mmap(graph, tmp_path)
        config = CensusConfig(max_edges=3)
        sampled = SampledCensusConfig(budget=64, seed=seed)
        for root in shuffled_roots(graph, seed):
            expected = subgraph_census(
                graph, root, config, engine="sampled", sampled=sampled
            )
            got = subgraph_census(
                mg, root, config, engine="sampled", sampled=sampled
            )
            assert got == expected

    @pytest.mark.parametrize("n_jobs", (1, 2))
    def test_census_many_parity(self, tmp_path, n_jobs):
        graph = random_hetero_graph(21)
        mg = as_mmap(graph, tmp_path)
        config = CensusConfig(max_edges=3, max_degree=4, mask_start_label=True)
        roots = shuffled_roots(graph, 21)
        expected = SubgraphFeatureExtractor(config, n_jobs=1).census_many(
            graph, roots
        )
        got = SubgraphFeatureExtractor(config, n_jobs=n_jobs).census_many(
            mg, roots
        )
        assert got == expected

    def test_partitioned_census_over_mmap(self, tmp_path):
        graph = random_hetero_graph(22)
        mg = as_mmap(graph, tmp_path)
        config = CensusConfig(max_edges=3)
        roots = list(range(graph.num_nodes))
        expected = [subgraph_census(graph, r, config) for r in roots]
        got = subgraph_census_sharded(
            mg, roots, config, partitions=PartitionConfig(num_partitions=3)
        )
        assert got == expected


# ---------------------------------------------------------------------------
# external-sort ingestion
# ---------------------------------------------------------------------------


class TestBuildMmapGraph:
    @pytest.mark.parametrize("seed", range(4))
    def test_ingest_matches_read_edgelist(self, tmp_path, seed):
        graph = random_hetero_graph(seed + 60)
        edgelist = tmp_path / "g.edges"
        write_edgelist(graph, edgelist)
        # chunk_edges tiny on purpose: forces several spilled sort runs,
        # so the k-way merge path is actually exercised.
        path = build_mmap_graph(edgelist, tmp_path / "g.hmg", chunk_edges=4)
        mg = MmapGraph(path)
        twin = read_edgelist(edgelist)
        assert mg.fingerprint() == twin.fingerprint() == graph.fingerprint()
        assert mg.node_ids == twin.node_ids
        for i in range(twin.num_nodes):
            assert list(mg.neighbors(i)) == list(twin.neighbors(i))
        config = CensusConfig(max_edges=3, mask_start_label=seed % 2 == 0)
        for root in shuffled_roots(twin, seed):
            assert subgraph_census(mg, root, config) == subgraph_census(
                twin, root, config
            )

    def test_explicit_labelset_is_respected(self, tmp_path):
        graph = random_hetero_graph(65)
        edgelist = tmp_path / "g.edges"
        write_edgelist(graph, edgelist)
        labelset = LabelSet(("Z",) + graph.labelset.names)
        path = build_mmap_graph(edgelist, tmp_path / "g.hmg", labelset=labelset)
        mg = MmapGraph(path)
        assert mg.labelset.names == labelset.names
        twin = read_edgelist(edgelist, labelset=labelset)
        assert mg.fingerprint() == twin.fingerprint()

    def test_unknown_label_with_explicit_labelset(self, tmp_path):
        edgelist = tmp_path / "bad.edges"
        edgelist.write_text("v a A\nv b B\ne a b\n")
        with pytest.raises(GraphError, match=r"bad.edges:2: label 'B'"):
            build_mmap_graph(
                edgelist, tmp_path / "bad.hmg", labelset=LabelSet(("A",))
            )

    def test_duplicate_node_reports_line(self, tmp_path):
        edgelist = tmp_path / "dup.edges"
        edgelist.write_text("v a A\nv a A\n")
        with pytest.raises(GraphError, match=r"dup.edges:2: duplicate node 'a'"):
            build_mmap_graph(edgelist, tmp_path / "dup.hmg")

    def test_undeclared_endpoint_reports_line(self, tmp_path):
        edgelist = tmp_path / "und.edges"
        edgelist.write_text("v a A\ne a ghost\n")
        with pytest.raises(GraphError, match=r"und.edges:2: .*'ghost'"):
            build_mmap_graph(edgelist, tmp_path / "und.hmg")

    def test_self_loop_reports_line(self, tmp_path):
        edgelist = tmp_path / "loop.edges"
        edgelist.write_text("v a A\nv b B\ne a a\n")
        with pytest.raises(GraphError, match=r"loop.edges:3: self loop"):
            build_mmap_graph(edgelist, tmp_path / "loop.hmg")

    def test_malformed_line_reports_line(self, tmp_path):
        edgelist = tmp_path / "mal.edges"
        edgelist.write_text("v a A\nxyzzy\n")
        with pytest.raises(GraphError, match=r"mal.edges:2: malformed line"):
            build_mmap_graph(edgelist, tmp_path / "mal.hmg")

    def test_duplicate_edge_detected_in_merge(self, tmp_path):
        edgelist = tmp_path / "dupe.edges"
        edgelist.write_text("v a A\nv b B\ne a b\ne b a\n")
        with pytest.raises(GraphError, match=r"duplicate edge"):
            build_mmap_graph(edgelist, tmp_path / "dupe.hmg")

    def test_rejects_bad_chunk_edges(self, tmp_path):
        edgelist = tmp_path / "g.edges"
        edgelist.write_text("v a A\n")
        with pytest.raises(GraphError, match="chunk_edges"):
            build_mmap_graph(edgelist, tmp_path / "g.hmg", chunk_edges=0)

    def test_failed_ingest_leaves_no_output(self, tmp_path):
        edgelist = tmp_path / "dupe.edges"
        edgelist.write_text("v a A\nv b B\ne a b\ne b a\n")
        out = tmp_path / "atomic.hmg"
        with pytest.raises(GraphError):
            build_mmap_graph(edgelist, out)
        assert not out.exists()
        assert not list(tmp_path.glob("atomic.hmg.*.tmp"))


# ---------------------------------------------------------------------------
# streaming census driver
# ---------------------------------------------------------------------------


class TestCensusStream:
    def test_parity_and_order(self, tmp_path):
        graph = random_hetero_graph(30)
        mg = as_mmap(graph, tmp_path)
        config = CensusConfig(max_edges=3)
        roots = shuffled_roots(graph, 30)
        expected = SubgraphFeatureExtractor(config).census_many(graph, roots)
        pairs = list(census_stream(mg, iter(roots), config, batch_size=3))
        assert [root for root, _ in pairs] == roots
        assert [census for _, census in pairs] == expected

    def test_rejects_bad_batch_size(self):
        graph = random_hetero_graph(31)
        with pytest.raises(FeatureError, match="batch_size"):
            list(census_stream(graph, [0], batch_size=0))

    def test_spills_into_artifact_store(self, tmp_path):
        graph = random_hetero_graph(32)
        mg = as_mmap(graph, tmp_path)
        config = CensusConfig(max_edges=3)
        store = ArtifactStore()
        ctx = RunContext(store=store)
        roots = list(range(graph.num_nodes))
        cold = list(census_stream(mg, roots, config, batch_size=4, ctx=ctx))
        assert store.stage_entries("census") == graph.num_nodes
        hits_before = store.hits
        warm = list(census_stream(mg, roots, config, batch_size=4, ctx=ctx))
        assert warm == cold
        assert store.hits > hits_before  # second pass served from the store

    def test_parallel_spawn_workers_reopen_the_mapping(self, tmp_path):
        graph = random_hetero_graph(33)
        mg = as_mmap(graph, tmp_path)
        config = CensusConfig(max_edges=3)
        roots = list(range(graph.num_nodes))
        expected = SubgraphFeatureExtractor(config).census_many(graph, roots)
        pairs = list(
            census_stream(
                mg,
                roots,
                config,
                batch_size=len(roots),
                n_jobs=2,
                mp_context="spawn",
            )
        )
        assert [census for _, census in pairs] == expected


# ---------------------------------------------------------------------------
# flat-graph contract plumbing
# ---------------------------------------------------------------------------


class TestStorageKinds:
    def test_storage_kind_markers(self, tmp_path):
        graph = random_hetero_graph(50)
        assert graph.storage_kind == "dict"
        assert FlatGraph.storage_kind == "flat"
        assert as_mmap(graph, tmp_path).storage_kind == "mmap"

    def test_flat_graph_shares_the_fingerprint(self):
        graph = random_hetero_graph(51)
        flat_twin = FlatGraph(graph.flat(), graph.labelset)
        assert flat_twin.fingerprint() == graph.fingerprint()
        assert flat_twin.num_nodes == graph.num_nodes
        assert flat_twin.num_edges == graph.num_edges
        config = CensusConfig(max_edges=3)
        for root in range(graph.num_nodes):
            assert subgraph_census(flat_twin, root, config) == subgraph_census(
                graph, root, config
            )

    def test_storage_annotation_in_telemetry(self, tmp_path):
        from repro.obs.telemetry import fresh_telemetry

        graph = random_hetero_graph(52)
        mg = as_mmap(graph, tmp_path)
        with fresh_telemetry() as telemetry:
            subgraph_census(mg, 0, CensusConfig(max_edges=2))
            assert telemetry.annotations.get("census/storage") == "mmap"
        with fresh_telemetry() as telemetry:
            subgraph_census(graph, 0, CensusConfig(max_edges=2))
            assert telemetry.annotations.get("census/storage") == "dict"
