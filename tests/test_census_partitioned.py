"""Randomized parity suite for the partitioned census (`repro.dist`).

The contract under test is absolute: for every root, the sharded census
must return a ``Counter`` *bit-identical* to the single-shard fast
engine, across shard counts, partitioning strategies, masked/unmasked
configs, hub-capped and uncapped runs, and duplicate/out-of-order root
lists.  The suite also pins the partitioner invariants the guarantee
rests on: exact-cover ownership, global degrees inside shards, and the
rejection of halos too shallow for the census radius.
"""

from __future__ import annotations

import random

import pytest

from repro.core.census import CensusConfig, subgraph_census
from repro.core.features import SubgraphFeatureExtractor
from repro.dist import (
    PartitionConfig,
    PartitionSet,
    ensure_partitions,
    partition_graph,
    required_halo_depth,
    subgraph_census_sharded,
)
from repro.core.graph import HeteroGraph
from repro.exceptions import FeatureError, PartitionError
from repro.runtime.context import RunContext
from repro.runtime.store import STAGE_PARTITION, ArtifactStore

PARTITION_COUNTS = (1, 2, 3, 7)


def random_hetero_graph(seed: int, directed_sampling: bool = False) -> HeteroGraph:
    """A random labelled graph; density and size vary with the seed.

    ``directed_sampling`` draws edges as *ordered* pairs (both
    orientations possible, canonicalised by ``HeteroGraph`` into one
    undirected edge) — a different degree/multiplicity profile than
    plain undirected sampling, exercising the dedup path of the flat
    adjacency builder inside each shard.
    """
    rng = random.Random(seed)
    num_labels = rng.randint(2, 4)
    labels = "ABCD"[:num_labels]
    n = rng.randint(12, 30)
    nodes = {f"n{i}": rng.choice(labels) for i in range(n)}
    p = rng.uniform(0.08, 0.25)
    if directed_sampling:
        # ordered pairs, canonicalised + deduped into undirected edges
        drawn = {
            (min(i, j), max(i, j))
            for i in range(n)
            for j in range(n)
            if i != j and rng.random() < p / 2
        }
        edges = [(f"n{i}", f"n{j}") for i, j in sorted(drawn)]
    else:
        edges = [
            (f"n{i}", f"n{j}")
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < p
        ]
    if not edges:
        edges = [("n0", "n1")]
    return HeteroGraph.from_edges(nodes, edges)


def hubby_graph() -> HeteroGraph:
    """A star-of-stars: hub nodes whose pruning must match across shards."""
    nodes = {"hub": "A"}
    edges = []
    for i in range(8):
        spoke = f"s{i}"
        nodes[spoke] = "B"
        edges.append(("hub", spoke))
        for j in range(3):
            leaf = f"s{i}_l{j}"
            nodes[leaf] = "C"
            edges.append((spoke, leaf))
    return HeteroGraph.from_edges(nodes, edges)


def single_shard(graph, roots, config):
    return [subgraph_census(graph, r, config, engine="fast") for r in roots]


# ---------------------------------------------------------------------------
# parity: sharded == single-shard fast engine, bit for bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("strategy", ("contiguous", "hash"))
def test_randomized_parity(seed, strategy):
    directed_sampling = seed % 2 == 1
    graph = random_hetero_graph(seed, directed_sampling=directed_sampling)
    rng = random.Random(seed + 1000)
    config = CensusConfig(
        max_edges=3,
        max_degree=rng.choice([None, 3, 5]),
        mask_start_label=seed % 3 == 0,
    )
    # out-of-order roots with duplicates
    roots = list(range(graph.num_nodes))
    rng.shuffle(roots)
    roots = roots[: max(4, graph.num_nodes // 2)]
    roots += [roots[0], roots[2], roots[0]]
    expected = single_shard(graph, roots, config)
    for k in PARTITION_COUNTS:
        pconfig = PartitionConfig(num_partitions=k, strategy=strategy)
        got = subgraph_census_sharded(graph, roots, config, partitions=pconfig)
        assert got == expected, f"k={k} strategy={strategy}"


@pytest.mark.parametrize("max_degree", (None, 2, 4))
def test_hub_graph_parity(max_degree):
    """Hub pruning must behave identically inside shards (global degrees)."""
    graph = hubby_graph()
    config = CensusConfig(max_edges=3, max_degree=max_degree)
    roots = list(range(graph.num_nodes))
    expected = single_shard(graph, roots, config)
    for k in PARTITION_COUNTS:
        for strategy in ("contiguous", "hash"):
            got = subgraph_census_sharded(
                graph,
                roots,
                config,
                partitions=PartitionConfig(num_partitions=k, strategy=strategy),
            )
            assert got == expected


def test_parity_with_multiprocess_fanout():
    graph = random_hetero_graph(42)
    config = CensusConfig(max_edges=3, max_degree=4, mask_start_label=True)
    roots = list(range(graph.num_nodes)) + [0, 0]
    expected = single_shard(graph, roots, config)
    got = subgraph_census_sharded(
        graph, roots, config, partitions=3, n_jobs=2
    )
    assert got == expected


def test_duplicate_roots_are_independent_counters():
    graph = random_hetero_graph(7)
    config = CensusConfig(max_edges=2)
    results = subgraph_census_sharded(graph, [0, 0], config, partitions=2)
    assert results[0] == results[1]
    results[0]["poison"] = 99
    assert "poison" not in results[1]


def test_key_modes_and_cap_survive_sharding():
    graph = random_hetero_graph(11)
    for key in ("canonical", "string", "hash"):
        config = CensusConfig(max_edges=2, key=key)
        roots = [0, 1, 2]
        assert (
            subgraph_census_sharded(graph, roots, config, partitions=3)
            == single_shard(graph, roots, config)
        )


# ---------------------------------------------------------------------------
# partitioner invariants
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ("contiguous", "hash"))
@pytest.mark.parametrize("k", PARTITION_COUNTS)
def test_ownership_is_an_exact_cover(strategy, k):
    graph = random_hetero_graph(5)
    config = PartitionConfig(num_partitions=k, strategy=strategy)
    pset = partition_graph(graph, config, CensusConfig(max_edges=2))
    seen = {}
    for part in pset:
        for local in part.owned_locals:
            g = part.global_ids[local]
            assert g not in seen, f"node {g} owned twice"
            seen[g] = part.part_id
            assert pset.owner_of(g) == part.part_id
    assert sorted(seen) == list(range(graph.num_nodes))


def test_local_global_id_maps_are_inverse():
    graph = random_hetero_graph(9)
    pset = partition_graph(
        graph, PartitionConfig(num_partitions=3), CensusConfig(max_edges=3)
    )
    for part in pset:
        for local, g in enumerate(part.global_ids):
            assert part.local_of[g] == local
            assert part.local(g) == local
            # labels and (global) degrees survive the re-index
            assert part.graph.label_of(local) == graph.label_of(g)
            assert part.graph.degree(local) == graph.degree(g)
        with pytest.raises(PartitionError):
            part.local(graph.num_nodes + 5)


def test_halo_contains_census_ball_of_every_owned_root():
    """Every node any owned root's census can include is in the shard."""
    graph = random_hetero_graph(13)
    config = CensusConfig(max_edges=3, max_degree=4)
    pset = partition_graph(
        graph, PartitionConfig(num_partitions=3, strategy="hash"), config
    )
    for part in pset:
        present = set(part.global_ids)
        for local in part.owned_locals:
            root = part.global_ids[local]
            census_nodes = _census_reachable(graph, root, config)
            assert census_nodes <= present


def _census_reachable(graph, root, config):
    """Hub-pruned e_max ball: the nodes the census can possibly include."""
    depth = config.max_edges
    dmax = config.max_degree
    seen = {root}
    frontier = [root]
    for level in range(depth):
        nxt = []
        for node in frontier:
            if (
                level > 0
                and dmax is not None
                and graph.degree(node) > dmax
            ):
                continue
            for other in graph.neighbors(node):
                if other not in seen:
                    seen.add(other)
                    nxt.append(other)
        frontier = nxt
    return seen


def test_shallow_halo_is_rejected():
    graph = random_hetero_graph(1)
    census = CensusConfig(max_edges=4)
    assert required_halo_depth(census) == 4
    with pytest.raises(PartitionError, match="locally incomplete"):
        partition_graph(
            graph,
            PartitionConfig(num_partitions=2, halo_depth=2),
            census,
        )
    # an equal-or-deeper explicit halo is fine
    pset = partition_graph(
        graph, PartitionConfig(num_partitions=2, halo_depth=5), census
    )
    assert pset.halo_depth == 5


def test_partition_config_validation():
    with pytest.raises(PartitionError):
        PartitionConfig(num_partitions=0)
    with pytest.raises(PartitionError, match="partition strategy"):
        PartitionConfig(num_partitions=2, strategy="ring")
    with pytest.raises(PartitionError):
        PartitionConfig(num_partitions=2, halo_depth=0)


def test_mismatched_partition_set_is_rejected():
    graph = random_hetero_graph(2)
    other = random_hetero_graph(3)
    pset = partition_graph(
        graph, PartitionConfig(num_partitions=2), CensusConfig(max_edges=2)
    )
    assert isinstance(pset, PartitionSet)
    with pytest.raises(PartitionError, match="different graph"):
        subgraph_census_sharded(
            other, [0], CensusConfig(max_edges=2), partitions=pset
        )


def test_cap_error_names_global_root_and_partition():
    """Shard-local failures must report global ids, not local ones."""
    graph = hubby_graph()
    config = CensusConfig(max_edges=3, max_subgraphs=1)
    with pytest.raises(Exception) as excinfo:
        subgraph_census_sharded(graph, [graph.num_nodes - 1], config, partitions=3)
    assert "global root" in str(excinfo.value)
    assert "partition" in str(excinfo.value)


# ---------------------------------------------------------------------------
# runtime integration: store memoisation, extractor, context
# ---------------------------------------------------------------------------


def test_partition_artifacts_are_store_memoised(tmp_path):
    graph = random_hetero_graph(21)
    census = CensusConfig(max_edges=3, max_degree=4)
    store = ArtifactStore(tmp_path / "store.pkl")
    ctx = RunContext(store=store)
    pconfig = PartitionConfig(num_partitions=2)
    first = ensure_partitions(graph, pconfig, census, ctx)
    assert store.misses == 1 and store.hits == 0
    second = ensure_partitions(graph, pconfig, census, ctx)
    assert store.hits == 1
    assert second.fingerprint == first.fingerprint
    assert [p.global_ids for p in second] == [p.global_ids for p in first]
    assert store.stage_entries(STAGE_PARTITION) == 1
    # a different d_max reshapes the halo -> a different artifact
    ensure_partitions(
        graph, pconfig, CensusConfig(max_edges=3, max_degree=2), ctx
    )
    assert store.stage_entries(STAGE_PARTITION) == 2


def test_extractor_routes_through_shards(tmp_path):
    graph = random_hetero_graph(17)
    config = CensusConfig(max_edges=3, max_degree=5, mask_start_label=True)
    roots = list(range(0, graph.num_nodes, 2)) + [1, 1]
    expected = single_shard(graph, roots, config)

    plain = SubgraphFeatureExtractor(config)
    assert plain.census_many(graph, roots, partitions=3) == expected
    assert plain.partitions is None  # per-call override leaves the policy

    store = ArtifactStore(tmp_path / "store.pkl")
    ctx = RunContext(partitions=3, store=store)
    sharded = SubgraphFeatureExtractor(config, ctx=ctx)
    assert sharded.partitions == 3
    assert sharded.census_many(graph, roots) == expected
    # shards were cut once and cached alongside the per-root censuses
    assert store.stage_entries(STAGE_PARTITION) == 1
    with pytest.raises(FeatureError):
        sharded.census_many(graph, roots, partitions=0)


def test_context_resolves_partitions():
    assert RunContext().resolved_partitions() is None
    assert RunContext(partitions=4).resolved_partitions() == 4
    assert RunContext().resolved_partitions(default=2) == 2
    with pytest.raises(ValueError):
        RunContext(partitions=0).resolved_partitions()
