"""Cross-process determinism tests.

Python randomises string hashing per process, so any code path that
iterates a set of node ids leaks that randomness into node index order —
which silently changes how embeddings align their random streams.  These
tests rebuild the worlds in subprocesses with different ``PYTHONHASHSEED``
values and require identical results.
"""

import os
import subprocess
import sys

SNAPSHOT_SCRIPT = """
import json
from repro.datasets import MagConfig, SyntheticMAG, SyntheticLOAD, LoadConfig

mag = SyntheticMAG(MagConfig(num_institutions=8, authors_per_institution=2,
                             papers_per_conference_year=8, conferences=("KDD",),
                             years=(2013, 2014, 2015), seed=3))
graph = mag.build_rank_graph("KDD", 2014)
load = SyntheticLOAD(LoadConfig(num_locations=20, num_organizations=15,
                                num_actors=20, num_dates=10, mean_degree=5, seed=4))
print(json.dumps({
    "rank_ids": list(map(str, graph.node_ids)),
    "rank_edges": sorted(map(list, ((str(graph.node_id(u)), str(graph.node_id(v)))
                                    for u, v in graph.edges()))),
    "load_ids": list(map(str, load.graph.node_ids)),
}))
"""


def _snapshot(hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    result = subprocess.run(
        [sys.executable, "-c", SNAPSHOT_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout.strip().splitlines()[-1]


class TestHashSeedIndependence:
    def test_worlds_identical_across_hash_seeds(self):
        a = _snapshot("0")
        b = _snapshot("12345")
        assert a == b

    def test_node_index_order_is_stable(self):
        """Specifically the rank graph's node id order (the embedding
        alignment surface) must not depend on set iteration order."""
        import json

        ids_a = json.loads(_snapshot("1"))["rank_ids"]
        ids_b = json.loads(_snapshot("999"))["rank_ids"]
        assert ids_a == ids_b
