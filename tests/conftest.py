"""Shared fixtures: small deterministic graphs and a brute-force census.

The brute-force census enumerates *all* connected edge subsets containing a
root by filtering every subset of the edge set — exponential, fine for the
tiny fixtures — and is the ground truth the real census is checked against.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

import pytest

from repro.core.encoding import encode_subgraph
from repro.core.graph import HeteroGraph


@pytest.fixture
def triangle_graph() -> HeteroGraph:
    """A-B-C triangle with three distinct labels."""
    return HeteroGraph.from_edges(
        {"a": "A", "b": "B", "c": "C"},
        [("a", "b"), ("b", "c"), ("a", "c")],
    )


@pytest.fixture
def paper_path_graph() -> HeteroGraph:
    """The z-y-z path of Figure 1B (plus an isolated x node)."""
    return HeteroGraph.from_edges(
        {"n1": "z", "n2": "y", "n3": "z", "nx": "x"},
        [("n1", "n2"), ("n2", "n3")],
    )


@pytest.fixture
def publication_graph() -> HeteroGraph:
    """A miniature institution/author/paper network (Figure 1A flavour)."""
    return HeteroGraph.from_edges(
        {
            "i1": "I",
            "i2": "I",
            "a1": "A",
            "a2": "A",
            "a3": "A",
            "p1": "P",
            "p2": "P",
        },
        [
            ("i1", "a1"),
            ("i1", "a2"),
            ("i2", "a3"),
            ("a1", "p1"),
            ("a2", "p1"),
            ("a3", "p1"),
            ("a3", "p2"),
            ("p1", "p2"),
        ],
    )


@pytest.fixture
def dense_two_label_graph() -> HeteroGraph:
    """K4 with alternating labels: many overlapping rooted subgraphs."""
    nodes = {f"v{i}": ("X" if i % 2 else "Y") for i in range(4)}
    edges = [(f"v{i}", f"v{j}") for i in range(4) for j in range(i + 1, 4)]
    return HeteroGraph.from_edges(nodes, edges)


def brute_force_census(
    graph: HeteroGraph,
    root: int,
    max_edges: int,
    mask_start_label: bool = False,
    include_trivial: bool = False,
) -> Counter:
    """Reference census: filter all edge subsets of size <= max_edges.

    A subset counts iff it is connected and its node set contains ``root``.
    Encoding matches the census's effective labelling (optional mask).
    """
    if mask_start_label:
        labelset = graph.labelset.with_mask()
        mask = labelset.mask_index
        eff = lambda v: mask if v == root else graph.label_of(v)  # noqa: E731
        num_labels = len(labelset)
    else:
        eff = graph.label_of
        num_labels = len(graph.labelset)

    edges = list(graph.edges())
    counts: Counter = Counter()
    if include_trivial:
        counts[encode_subgraph([eff(root)], [], num_labels)] += 1
    for size in range(1, max_edges + 1):
        for subset in combinations(edges, size):
            nodes = sorted({v for edge in subset for v in edge})
            if root not in nodes:
                continue
            if not _connected(nodes, subset):
                continue
            relabel = {v: i for i, v in enumerate(nodes)}
            code = encode_subgraph(
                [eff(v) for v in nodes],
                [(relabel[u], relabel[v]) for u, v in subset],
                num_labels,
            )
            counts[code] += 1
    return counts


def _connected(nodes, edges) -> bool:
    adjacency = {v: set() for v in nodes}
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    seen = {nodes[0]}
    stack = [nodes[0]]
    while stack:
        current = stack.pop()
        for neighbour in adjacency[current]:
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append(neighbour)
    return len(seen) == len(nodes)
