"""Tests for runtime measurement, importance reports, and rendering."""

import pytest

from repro.datasets import ImdbConfig, MagConfig, SyntheticIMDB, SyntheticMAG
from repro.experiments.common import EmbeddingParams, percentile_degree
from repro.experiments.importance import discriminative_subgraphs
from repro.experiments.rank_prediction import RankTaskConfig
from repro.experiments.reporting import (
    render_sweep,
    render_table,
    render_table2,
    render_table3,
)
from repro.experiments.runtime import (
    RuntimeReport,
    runtime_report,
    time_census_per_node,
    time_embeddings_per_node,
)


@pytest.fixture(scope="module")
def imdb_graph():
    return SyntheticIMDB(
        ImdbConfig(
            num_movies=40,
            num_actors=60,
            num_directors=15,
            num_writers=20,
            num_composers=10,
            num_keywords=15,
            seed=7,
        )
    ).graph


class TestPercentileDegree:
    def test_100_means_no_cap(self, imdb_graph):
        assert percentile_degree(imdb_graph, 100) is None
        assert percentile_degree(imdb_graph, 150) is None

    def test_percentile_value(self, imdb_graph):
        p90 = percentile_degree(imdb_graph, 90)
        degrees = imdb_graph.degrees()
        assert (degrees <= p90).mean() >= 0.85


class TestRuntime:
    def test_census_times_positive(self, imdb_graph):
        times = time_census_per_node(imdb_graph, [0, 1, 2], emax=2)
        assert times.shape == (3,)
        assert (times > 0).all()

    def test_embedding_times(self, imdb_graph):
        params = EmbeddingParams(dim=8, num_walks=2, walk_length=8, window=3,
                                 line_samples=2_000)
        per_node = time_embeddings_per_node(imdb_graph, params)
        assert set(per_node) == {"node2vec", "deepwalk", "line"}
        assert all(v > 0 for v in per_node.values())

    def test_report_and_row(self, imdb_graph):
        params = EmbeddingParams(dim=8, num_walks=2, walk_length=8, window=3,
                                 line_samples=2_000)
        report = runtime_report(
            "IMDB", imdb_graph, [0, 1, 2, 3], emax=2, embedding_params=params
        )
        assert report.census_max >= report.census_p95 >= report.census_p75
        assert report.num_nodes_timed == 4
        row = report.row()
        assert "IMDB" in row
        assert "engine=fast" in row
        assert "n_jobs=1" in row
        rendered = render_table3([report])
        assert "Table 3" in rendered
        assert "pipeline" in rendered

    def test_row_with_missing_method_renders_na(self):
        """A partial run without every embedding must not KeyError."""
        report = RuntimeReport(
            dataset="IMDB",
            census_mean=0.1,
            census_p75=0.1,
            census_p90=0.1,
            census_p95=0.1,
            census_max=0.2,
            embedding_mean={"node2vec": 0.5},  # deepwalk and line missing
            num_nodes_timed=3,
        )
        row = report.row()
        assert "n/a" in row
        assert "0.50000" in row
        rendered = render_table3([report])
        assert "n/a" in rendered

    def test_census_cache_serves_second_timing_pass(self, imdb_graph):
        from repro.core.cache import CensusCache
        from repro.obs.telemetry import fresh_telemetry

        cache = CensusCache()
        with fresh_telemetry() as telemetry:
            cold = time_census_per_node(imdb_graph, [0, 1, 2], emax=2, cache=cache)
            warm = time_census_per_node(imdb_graph, [0, 1, 2], emax=2, cache=cache)
        assert cold.shape == warm.shape == (3,)
        assert telemetry.counters["census/cache_misses"] == 3
        assert telemetry.counters["census/cache_hits"] == 3
        assert telemetry.timers["census/root_timed"].count == 6

    def test_report_records_pipeline(self, imdb_graph):
        params = EmbeddingParams(dim=8, num_walks=2, walk_length=8, window=3,
                                 line_samples=2_000)
        report = runtime_report(
            "IMDB", imdb_graph, [0, 1], emax=2, embedding_params=params,
            embedding_engine="reference", embedding_n_jobs=2,
        )
        assert report.embedding_engine == "reference"
        assert "engine=reference" in report.row()
        assert "n_jobs=2" in report.row()


class TestImportance:
    def test_reports_decodable(self):
        mag = SyntheticMAG(
            MagConfig(
                num_institutions=8,
                authors_per_institution=3,
                papers_per_conference_year=12,
                conferences=("KDD",),
                years=tuple(range(2012, 2016)),
                seed=8,
            )
        )
        config = RankTaskConfig(
            train_years=(2014,), test_year=2015, emax=3, forest_trees=15, seed=0
        )
        reports = discriminative_subgraphs(mag, config, top=2)
        assert len(reports) == 1
        report = reports[0]
        assert report.conference == "KDD"
        assert len(report.ranking) == 2
        assert report.ranking[0].importance >= report.ranking[1].importance
        # Descriptions decode into readable subgraph summaries.
        assert "nodes" in report.ranking[0].description

    def test_render(self):
        mag = SyntheticMAG(
            MagConfig(
                num_institutions=6,
                authors_per_institution=2,
                papers_per_conference_year=8,
                conferences=("KDD",),
                years=(2013, 2014, 2015),
                seed=9,
            )
        )
        config = RankTaskConfig(
            train_years=(2014,), test_year=2015, emax=2, forest_trees=10, seed=0
        )
        reports = discriminative_subgraphs(mag, config, top=1)
        graph = mag.build_rank_graph("KDD", 2013)
        text = reports[0].render(graph.labelset)
        assert "KDD" in text
        assert "#1" in text


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table("T", ["a", "b"], [("row", [1.0, 2.0])])
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "1.00" in lines[2]
        assert "2.00" in lines[2]

    def test_render_table2(self):
        text = render_table2({"LOAD": {90.0: 0.7, 100.0: 0.8}})
        assert "90%" in text and "100%" in text and "LOAD" in text

    def test_render_sweep(self):
        from repro.experiments.label_prediction import SweepResult

        sweep = SweepResult({("subgraph", 0.5): [0.7, 0.8]})
        text = render_sweep("Fig", sweep)
        assert "subgraph" in text
        assert "50%" in text
        assert "0.75" in text
