"""Tests for the observability layer: telemetry, logging, manifests."""

from __future__ import annotations

import json
import logging
import pickle

import pytest

from repro.obs.log import configure_logging, get_logger, resolve_level
from repro.obs.manifest import build_manifest, peak_rss_kb, write_manifest
from repro.obs.telemetry import (
    Telemetry,
    TimerStat,
    fresh_telemetry,
    get_telemetry,
)


class TestTimerStat:
    def test_add_tracks_count_total_max(self):
        stat = TimerStat()
        stat.add(1.0)
        stat.add(3.0)
        stat.add(2.0)
        assert stat.count == 3
        assert stat.total == pytest.approx(6.0)
        assert stat.max == pytest.approx(3.0)
        assert stat.mean == pytest.approx(2.0)

    def test_empty_mean_is_zero(self):
        assert TimerStat().mean == 0.0

    def test_as_dict_shape(self):
        stat = TimerStat()
        stat.add(0.5)
        assert stat.as_dict() == {
            "count": 1,
            "total_sec": 0.5,
            "mean_sec": 0.5,
            "max_sec": 0.5,
        }


class TestTelemetry:
    def test_counters_accumulate(self):
        t = Telemetry()
        t.count("x")
        t.count("x", 4)
        assert t.counters["x"] == 5

    def test_span_records_elapsed(self):
        t = Telemetry()
        with t.span("work") as span:
            pass
        assert span.elapsed >= 0.0
        assert t.timers["work"].count == 1
        assert t.timers["work"].total == pytest.approx(span.elapsed)

    def test_span_records_on_exception(self):
        t = Telemetry()
        with pytest.raises(RuntimeError):
            with t.span("broken"):
                raise RuntimeError("boom")
        assert t.timers["broken"].count == 1

    def test_gauge_max_keeps_peak(self):
        t = Telemetry()
        t.gauge_max("rss", 10)
        t.gauge_max("rss", 3)
        assert t.gauges["rss"] == 10.0
        t.gauge("rss", 3)  # plain gauge is last-write-wins
        assert t.gauges["rss"] == 3.0

    def test_annotations_stringify(self):
        t = Telemetry()
        t.annotate("engine", 42)
        assert t.annotations["engine"] == "42"


class TestMerge:
    def _worker(self) -> Telemetry:
        t = Telemetry()
        t.count("roots", 3)
        t.timer("census", 1.0)
        t.timer("census", 3.0)
        t.gauge_max("peak", 7)
        t.annotate("engine", "fast")
        return t

    def test_merge_counters_add_timers_combine(self):
        parent = self._worker()
        parent.merge(self._worker())
        assert parent.counters["roots"] == 6
        stat = parent.timers["census"]
        assert stat.count == 4
        assert stat.total == pytest.approx(8.0)
        assert stat.max == pytest.approx(3.0)
        assert parent.gauges["peak"] == 7

    def test_merge_accepts_snapshot_dict(self):
        snapshot = self._worker().snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot  # picklable
        parent = Telemetry()
        parent.merge(snapshot)
        assert parent.counters["roots"] == 3
        assert parent.annotations["engine"] == "fast"

    def test_merged_workers_equal_single_registry(self):
        """Two worker snapshots merged == the same ops in one registry."""
        combined = Telemetry()
        combined.merge(self._worker().snapshot())
        combined.merge(self._worker().snapshot())
        single = Telemetry()
        for _ in range(2):
            single.count("roots", 3)
            single.timer("census", 1.0)
            single.timer("census", 3.0)
            single.gauge_max("peak", 7)
            single.annotate("engine", "fast")
        assert combined.snapshot() == single.snapshot()

    def test_from_snapshot_roundtrip(self):
        original = self._worker()
        clone = Telemetry.from_snapshot(original.snapshot())
        assert clone.snapshot() == original.snapshot()

    def test_reset_clears_everything(self):
        t = self._worker()
        t.reset()
        assert t.snapshot() == Telemetry().snapshot()


class TestGlobalRegistry:
    def test_fresh_telemetry_isolates_and_restores(self):
        outer = get_telemetry()
        outer_marker = f"outer/{id(outer)}"
        outer.count(outer_marker)
        with fresh_telemetry() as inner:
            assert get_telemetry() is inner
            assert inner is not outer
            assert outer_marker not in inner.counters
            inner.count("inner")
        assert get_telemetry() is outer
        assert "inner" not in get_telemetry().counters

    def test_nested_fresh_telemetry(self):
        with fresh_telemetry() as first:
            with fresh_telemetry() as second:
                assert get_telemetry() is second
            assert get_telemetry() is first


class TestLogging:
    def test_get_logger_prefixes_bare_names(self):
        assert get_logger("cli").name == "repro.cli"
        assert get_logger("repro.core.cache").name == "repro.core.cache"
        assert get_logger().name == "repro"

    def test_resolve_level(self):
        assert resolve_level("debug") == logging.DEBUG
        assert resolve_level("WARNING") == logging.WARNING
        assert resolve_level(logging.ERROR) == logging.ERROR
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("loud")

    def test_configure_is_idempotent(self):
        root = configure_logging("info")
        handlers_before = list(root.handlers)
        configure_logging("debug")
        assert list(root.handlers) == handlers_before
        assert root.level == logging.DEBUG
        configure_logging("info")
        assert root.level == logging.INFO

    def test_verbosity_forces_debug(self):
        root = configure_logging("warning", verbosity=1)
        assert root.level == logging.DEBUG
        configure_logging("info")

    def test_handler_follows_swapped_stderr(self, capsys):
        """Diagnostics land on whatever sys.stderr currently is."""
        configure_logging("info")
        get_logger("test_obs").info("hello from the library")
        assert "hello from the library" in capsys.readouterr().err


class TestManifest:
    def test_census_cache_section_derived_from_counters(self):
        with fresh_telemetry() as t:
            t.count("census/cache_hits", 3)
            t.count("census/cache_misses", 1)
            t.count("census/dedup_saved", 2)
            t.annotate("cache/load_status", "loaded")
            manifest = build_manifest("census", config={"engine": "fast"})
        cache = manifest["census_cache"]
        assert cache["hits"] == 3
        assert cache["misses"] == 1
        assert cache["hit_rate"] == pytest.approx(0.75)
        assert cache["dedup_saved"] == 2
        assert cache["load_status"] == "loaded"

    def test_empty_run_has_zero_hit_rate(self):
        with fresh_telemetry():
            manifest = build_manifest("census")
        assert manifest["census_cache"]["hit_rate"] == 0.0
        assert manifest["census_cache"]["load_status"] is None

    def test_phases_extracted_from_prefixed_timers(self):
        with fresh_telemetry() as t:
            t.timer("phase/census", 1.5)
            t.timer("census/root", 0.1)
            manifest = build_manifest("runtime")
        assert set(manifest["phases"]) == {"census"}
        assert manifest["phases"]["census"]["count"] == 1
        assert manifest["phases"]["census"]["total_sec"] == pytest.approx(1.5)
        assert "census/root" in manifest["timers"]

    def test_provenance_records_engine_and_n_jobs(self):
        with fresh_telemetry():
            manifest = build_manifest(
                "features", config={"engine": "fast", "n_jobs": 2}
            )
        assert manifest["provenance"]["engine"] == "fast"
        assert manifest["provenance"]["n_jobs"] == 2
        assert manifest["schema_version"] == 1

    def test_config_made_json_safe(self, tmp_path):
        with fresh_telemetry():
            manifest = build_manifest(
                "census",
                config={
                    "path": tmp_path / "g.json",
                    "years": (2014, 2015),
                    "obj": object(),
                },
            )
        encoded = json.dumps(manifest)  # must not raise
        assert str(tmp_path / "g.json") in encoded
        assert manifest["config"]["years"] == [2014, 2015]

    def test_artifact_store_section_merges_counters_and_gauges(self):
        with fresh_telemetry() as t:
            t.count("artifact/census/hits", 3)
            t.count("artifact/census/misses", 1)
            t.count("artifact/partition/misses", 1)
            t.gauge("store/entries", 5)
            t.gauge("store/evictions", 2)
            t.gauge("store/approx_payload_bytes", 4096)
            t.gauge("store/entries/census", 4)
            t.gauge("store/entries/partition", 1)
            manifest = build_manifest("census")
        section = manifest["artifact_store"]
        assert section["entries"] == 5
        assert section["evictions"] == 2
        assert section["approx_payload_bytes"] == 4096
        census = section["stages"]["census"]
        assert census["hits"] == 3
        assert census["hit_rate"] == pytest.approx(0.75)
        assert census["entries"] == 4
        assert section["stages"]["partition"]["entries"] == 1

    def test_artifact_store_section_without_store_has_no_totals(self):
        with fresh_telemetry():
            manifest = build_manifest("census")
        assert "entries" not in manifest["artifact_store"]

    def test_write_manifest_roundtrip(self, tmp_path):
        target = tmp_path / "run.json"
        with fresh_telemetry() as t:
            t.count("census/cache_misses", 4)
            with t.span("phase/total"):
                pass
            write_manifest(target, "census", config={"emax": 3})
        loaded = json.loads(target.read_text())
        assert loaded["command"] == "census"
        assert loaded["config"]["emax"] == 3
        assert loaded["census_cache"]["misses"] == 4
        assert "total" in loaded["phases"]
        assert loaded["peak_rss_kb"] is None or loaded["peak_rss_kb"] > 0

    def test_peak_rss_positive_on_posix(self):
        peak = peak_rss_kb()
        assert peak is None or peak > 0


class TestDistribution:
    def test_quantile_accuracy_within_bucket_error(self):
        from repro.obs import Distribution

        import numpy as np

        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-5.0, sigma=1.5, size=5000)
        dist = Distribution()
        for value in values:
            dist.add(float(value))
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q))
            estimate = dist.quantile(q)
            # Bucket growth 2**(1/8) bounds relative error at ~4.5%;
            # allow double for nearest-rank wobble at the tail.
            assert abs(estimate - exact) / exact < 0.09, (q, estimate, exact)
        assert dist.count == 5000
        assert dist.mean == pytest.approx(float(values.mean()))
        assert dist.quantile(0.0) == pytest.approx(float(values.min()))
        assert dist.quantile(1.0) == pytest.approx(
            float(values.max()), rel=0.05
        )

    def test_zero_and_empty(self):
        from repro.obs import Distribution

        dist = Distribution()
        assert dist.quantile(0.5) == 0.0
        assert dist.mean == 0.0
        dist.add(0.0)
        assert dist.quantile(0.5) == 0.0  # underflow bucket reports min
        with pytest.raises(ValueError):
            dist.quantile(1.5)

    def test_merge_equals_single_stream(self):
        from repro.obs import Distribution

        import numpy as np

        rng = np.random.default_rng(3)
        values = rng.exponential(scale=0.01, size=2000)
        merged = Distribution()
        combined = Distribution()
        half = Distribution()
        for value in values[:1000]:
            combined.add(float(value))
            merged.add(float(value))
        for value in values[1000:]:
            half.add(float(value))
            merged.add(float(value))
        combined.merge(*half.state())
        assert combined.count == merged.count
        assert combined.total == pytest.approx(merged.total)
        assert combined.min == merged.min
        assert combined.max == merged.max
        assert combined.buckets == merged.buckets
        for q in (0.5, 0.99):
            assert combined.quantile(q) == merged.quantile(q)

    def test_observe_snapshot_merge_round_trip(self):
        t = Telemetry()
        for value in (0.001, 0.002, 0.004, 0.1):
            t.observe("serve/latency_s", value)
        snapshot = pickle.loads(pickle.dumps(t.snapshot()))
        other = Telemetry()
        other.observe("serve/latency_s", 0.5)
        other.merge(snapshot)
        dist = other.distributions["serve/latency_s"]
        assert dist.count == 5
        assert dist.max == pytest.approx(0.5)
        payload = other.as_dict()["distributions"]["serve/latency_s"]
        assert payload["count"] == 5
        assert payload["p99"] > 0

    def test_manifest_carries_distributions(self, tmp_path):
        from repro.obs.telemetry import fresh_telemetry as _fresh

        with _fresh() as t:
            t.observe("serve/latency_s", 0.002)
            t.observe("serve/latency_s", 0.050)
            manifest = build_manifest("serve", config={})
        dist = manifest["distributions"]["serve/latency_s"]
        assert dist["count"] == 2
        assert set(dist) >= {"count", "mean", "min", "max", "p50", "p90", "p99"}

    def test_reset_clears_distributions(self):
        t = Telemetry()
        t.observe("x", 1.0)
        t.reset()
        assert t.distributions == {}


class TestSpanAsyncioInterleaving:
    def test_interleaved_spans_attribute_elapsed_correctly(self):
        # The serving daemon runs span() inside coroutines that yield to
        # each other on one event loop.  Each span must charge only its
        # own wall clock (closure-local start, not shared mutable state),
        # no matter how the loop interleaves entry and exit.
        import asyncio

        t = Telemetry()

        async def slow():
            with t.span("slow"):
                await asyncio.sleep(0.2)

        async def quick(i: int):
            await asyncio.sleep(0.05)
            with t.span("quick"):
                await asyncio.sleep(0.01)

        async def main():
            await asyncio.gather(slow(), *(quick(i) for i in range(5)))

        asyncio.run(main())
        assert t.timers["slow"].count == 1
        assert t.timers["quick"].count == 5
        # The slow span wraps the quick ones in wall time; if handles
        # leaked across coroutines these bounds would be violated.
        assert t.timers["slow"].max >= 0.2
        assert t.timers["quick"].max < 0.15
        assert t.timers["quick"].total < t.timers["slow"].total

    def test_concurrent_observe_on_event_loop(self):
        import asyncio

        t = Telemetry()

        async def worker(i: int):
            for j in range(50):
                t.observe("loop/latency", 0.001 * (i + 1))
                await asyncio.sleep(0)

        async def main():
            await asyncio.gather(worker(0), worker(1), worker(2))

        asyncio.run(main())
        assert t.distributions["loop/latency"].count == 150
