"""Tests for edge-list and JSON serialisation."""

import numpy as np
import pytest

from repro.core.census import CensusConfig
from repro.core.features import SubgraphFeatureExtractor
from repro.exceptions import FeatureError, GraphError
from repro.io import (
    features_from_dict,
    features_to_dict,
    graph_from_dict,
    graph_to_dict,
    read_edgelist,
    read_features_json,
    read_graph_json,
    write_edgelist,
    write_features_json,
    write_graph_json,
)


def _graphs_equal(a, b) -> bool:
    if a.labelset != b.labelset or a.num_nodes != b.num_nodes:
        return False
    a_edges = {
        frozenset((a.node_id(u), a.node_id(v))) for u, v in a.edges()
    }
    b_edges = {
        frozenset((b.node_id(u), b.node_id(v))) for u, v in b.edges()
    }
    labels_a = {nid: a.label_name_of(nid) for nid in a.node_ids}
    labels_b = {nid: b.label_name_of(nid) for nid in b.node_ids}
    return a_edges == b_edges and labels_a == labels_b


class TestEdgelist:
    def test_roundtrip(self, publication_graph, tmp_path):
        target = tmp_path / "graph.hel"
        write_edgelist(publication_graph, target)
        back = read_edgelist(target, labelset=publication_graph.labelset)
        assert _graphs_equal(publication_graph, back)

    def test_ids_with_spaces_roundtrip(self, tmp_path):
        from repro.core.graph import HeteroGraph

        graph = HeteroGraph.from_edges(
            {"node one": "A", "node|two": "B"}, [("node one", "node|two")]
        )
        target = tmp_path / "weird.hel"
        write_edgelist(graph, target)
        back = read_edgelist(target)
        assert _graphs_equal(graph, back)

    def test_comments_and_blanks_ignored(self, tmp_path):
        target = tmp_path / "g.hel"
        target.write_text("# comment\n\nv a A\nv b B\ne a b\n")
        graph = read_edgelist(target)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1

    def test_edge_before_node_rejected(self, tmp_path):
        target = tmp_path / "bad.hel"
        target.write_text("e a b\nv a A\nv b B\n")
        with pytest.raises(GraphError, match="undeclared"):
            read_edgelist(target)

    def test_duplicate_node_rejected(self, tmp_path):
        target = tmp_path / "dup.hel"
        target.write_text("v a A\nv a B\n")
        with pytest.raises(GraphError, match="duplicate node"):
            read_edgelist(target)

    def test_malformed_line_rejected(self, tmp_path):
        target = tmp_path / "mal.hel"
        target.write_text("x something\n")
        with pytest.raises(GraphError, match="malformed"):
            read_edgelist(target)


class TestGraphJson:
    def test_dict_roundtrip(self, publication_graph):
        back = graph_from_dict(graph_to_dict(publication_graph))
        assert _graphs_equal(publication_graph, back)

    def test_file_roundtrip(self, publication_graph, tmp_path):
        target = tmp_path / "graph.json"
        write_graph_json(publication_graph, target)
        back = read_graph_json(target)
        assert _graphs_equal(publication_graph, back)

    def test_labelset_order_preserved(self, publication_graph):
        document = graph_to_dict(publication_graph)
        assert document["labels"] == list(publication_graph.labelset.names)
        back = graph_from_dict(document)
        assert back.labelset == publication_graph.labelset


class TestFeaturesJson:
    def _extract(self, graph):
        extractor = SubgraphFeatureExtractor(CensusConfig(max_edges=3))
        return extractor.fit_transform(graph, [0, 1, 2])

    def test_dict_roundtrip(self, publication_graph):
        features = self._extract(publication_graph)
        document = features_to_dict(features, publication_graph.labelset)
        back = features_from_dict(document)
        assert np.array_equal(back.matrix, features.matrix)
        assert back.nodes == features.nodes
        assert back.space.keys == features.space.keys

    def test_file_roundtrip(self, publication_graph, tmp_path):
        features = self._extract(publication_graph)
        target = tmp_path / "features.json"
        write_features_json(features, publication_graph.labelset, target)
        back = read_features_json(target)
        assert np.array_equal(back.matrix, features.matrix)

    def test_non_canonical_keys_rejected(self, publication_graph):
        from repro.core.features import FeatureSpace, SubgraphFeatures

        bogus = SubgraphFeatures(
            np.zeros((1, 1)), FeatureSpace(["string-key"]), (0,)
        )
        with pytest.raises(FeatureError, match="canonical"):
            features_to_dict(bogus, publication_graph.labelset)

    def test_corrupt_matrix_rejected(self, publication_graph):
        features = self._extract(publication_graph)
        document = features_to_dict(features, publication_graph.labelset)
        document["matrix"] = [[1.0]]
        with pytest.raises(FeatureError, match="shape"):
            features_from_dict(document)


class TestGraphML:
    def test_roundtrip(self, publication_graph, tmp_path):
        from repro.io import read_graphml, write_graphml

        target = tmp_path / "graph.graphml"
        write_graphml(publication_graph, target)
        back = read_graphml(target, labelset=publication_graph.labelset)
        assert _graphs_equal(publication_graph, back)

    def test_custom_label_attribute(self, publication_graph, tmp_path):
        from repro.io import read_graphml, write_graphml

        target = tmp_path / "graph.graphml"
        write_graphml(publication_graph, target, label_attr="kind")
        back = read_graphml(
            target, label_attr="kind", labelset=publication_graph.labelset
        )
        assert _graphs_equal(publication_graph, back)

    def test_directed_rejected(self, tmp_path):
        import networkx as nx

        from repro.io import read_graphml

        digraph = nx.DiGraph()
        digraph.add_node("a", label="A")
        digraph.add_node("b", label="B")
        digraph.add_edge("a", "b")
        target = tmp_path / "directed.graphml"
        nx.write_graphml(digraph, str(target))
        with pytest.raises(GraphError, match="directed"):
            read_graphml(target)
