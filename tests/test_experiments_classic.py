"""Tests for classic engineered features (Section 4.2.2)."""

import numpy as np
import pytest

from repro.datasets import MagConfig, SyntheticMAG
from repro.experiments.classic_features import (
    CLASSIC_FEATURE_NAMES,
    ClassicFeatureExtractor,
    pos_class,
    stem,
    tokenize_title,
    top_title_words,
)


@pytest.fixture(scope="module")
def world():
    mag = SyntheticMAG(
        MagConfig(
            num_institutions=10,
            authors_per_institution=3,
            papers_per_conference_year=15,
            conferences=("KDD",),
            years=tuple(range(2010, 2016)),
            seed=4,
        )
    )
    extractor = ClassicFeatureExtractor(mag, history_years=range(2010, 2015))
    return mag, extractor


class TestTextHelpers:
    def test_tokenize_lowercases(self):
        assert tokenize_title("Deep Mining") == ["deep", "mining"]

    def test_tokenize_splits_punctuation(self):
        assert tokenize_title("graphs, fast") == ["graphs", ",", "fast"]

    def test_stem_strips_suffixes(self):
        assert stem("patterns") == "pattern"
        assert stem("predicting") == "predict"
        assert stem("data") == "data"

    def test_stem_keeps_short_words(self):
        assert stem("is") == "is"

    def test_pos_class_lexicon(self):
        assert pos_class("mining") == "noun"
        assert pos_class("predicting") == "verb"
        assert pos_class("efficient") == "adjective"
        assert pos_class("provably") == "adverb"
        assert pos_class("10") == "number"
        assert pos_class(",") == "punctuation"

    def test_top_title_words(self, world):
        mag, _ = world
        words = top_title_words(mag, "KDD", range(2010, 2015), top=20)
        assert 0 < len(words) <= 20
        assert all(isinstance(w, str) for w in words)


class TestFeatureVector:
    def test_shape_is_42(self, world):
        """10 classic + 32 linguistic features (4 + 8 + 20)."""
        mag, extractor = world
        vector = extractor.features_for(mag.institutions[0], "KDD", 2015)
        assert vector.shape == (len(CLASSIC_FEATURE_NAMES) + 32,)
        assert vector.shape == (len(extractor.feature_names),)

    def test_matrix_stacks_institutions(self, world):
        mag, extractor = world
        matrix = extractor.matrix(mag.institutions, "KDD", 2015)
        assert matrix.shape == (10, len(extractor.feature_names))
        assert np.all(np.isfinite(matrix))

    def test_relevance_lag_matches_ground_truth(self, world):
        mag, extractor = world
        institution = mag.institutions[0]
        vector = extractor.features_for(institution, "KDD", 2015)
        expected = mag.relevance("KDD", 2014)[institution]
        assert vector[0] == pytest.approx(expected)

    def test_no_information_from_target_year(self, world):
        """Features for year y must not change if year-y papers change;
        verify by checking only past years feed the counters."""
        mag, extractor = world
        vector_2014 = extractor.features_for(mag.institutions[0], "KDD", 2014)
        # full_papers_past at 2014 counts years 2010-2013 only
        full = 0
        for year in range(2010, 2014):
            for pid in mag.papers_by_conf_year[("KDD", year)]:
                paper = mag.papers[pid]
                if paper.is_full and any(
                    mag.institutions[0] in mag.author_affiliations[a]
                    for a in paper.authors
                ):
                    full += 1
        names = list(extractor.feature_names)
        assert vector_2014[names.index("full_papers_past")] == full

    def test_inactive_institution_zero_linguistic(self, world):
        """An institution with no previous-year papers gets a zero
        linguistic block, not NaNs."""
        mag, extractor = world
        # Find an institution with no 2014 KDD papers, if any.
        active = set()
        for pid in mag.papers_by_conf_year[("KDD", 2014)]:
            for affils in mag.papers[pid].affiliations:
                active.update(affils)
        inactive = [i for i in mag.institutions if i not in active]
        if not inactive:
            pytest.skip("all institutions active in 2014")
        vector = extractor.features_for(inactive[0], "KDD", 2015)
        linguistic = vector[len(CLASSIC_FEATURE_NAMES):]
        assert np.allclose(linguistic, 0.0)

    def test_features_are_predictive(self, world):
        """Sanity: lag-1 relevance correlates with target relevance."""
        mag, extractor = world
        matrix = extractor.matrix(mag.institutions, "KDD", 2015)
        target = np.array(
            [mag.relevance("KDD", 2015)[i] for i in mag.institutions]
        )
        lag1 = matrix[:, 0]
        assert np.corrcoef(lag1, target)[0, 1] > 0.2
