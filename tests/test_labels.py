"""Unit tests for the label alphabet."""

import pytest

from repro.core.labels import MASK_LABEL, LabelSet
from repro.exceptions import LabelError


class TestConstruction:
    def test_preserves_order(self):
        ls = LabelSet(("P", "A", "I"))
        assert ls.names == ("P", "A", "I")

    def test_empty_rejected(self):
        with pytest.raises(LabelError):
            LabelSet(())

    def test_duplicates_rejected(self):
        with pytest.raises(LabelError):
            LabelSet(("A", "B", "A"))

    def test_names_coerced_to_str(self):
        ls = LabelSet((1, 2))
        assert ls.names == ("1", "2")

    def test_from_labelling_first_occurrence_order(self):
        ls = LabelSet.from_labelling(["z", "y", "z", "x", "y"])
        assert ls.names == ("z", "y", "x")


class TestLookup:
    def test_index_roundtrip(self):
        ls = LabelSet(("L", "O", "A", "D"))
        for i, name in enumerate(ls.names):
            assert ls.index(name) == i
            assert ls.name(i) == name

    def test_unknown_label_raises(self):
        ls = LabelSet(("A",))
        with pytest.raises(LabelError, match="unknown label"):
            ls.index("B")

    def test_index_out_of_range_raises(self):
        ls = LabelSet(("A",))
        with pytest.raises(LabelError):
            ls.name(1)
        with pytest.raises(LabelError):
            ls.name(-1)

    def test_contains(self):
        ls = LabelSet(("A", "B"))
        assert "A" in ls
        assert "C" not in ls

    def test_encode_sequence(self):
        ls = LabelSet(("x", "y"))
        assert ls.encode(["y", "x", "y"]) == [1, 0, 1]

    def test_len_and_iter(self):
        ls = LabelSet(("a", "b", "c"))
        assert len(ls) == 3
        assert list(ls) == ["a", "b", "c"]


class TestEquality:
    def test_equal_same_names(self):
        assert LabelSet(("A", "B")) == LabelSet(("A", "B"))

    def test_order_matters(self):
        assert LabelSet(("A", "B")) != LabelSet(("B", "A"))

    def test_hashable(self):
        assert hash(LabelSet(("A",))) == hash(LabelSet(("A",)))

    def test_not_equal_other_type(self):
        assert LabelSet(("A",)) != ("A",)


class TestMask:
    def test_with_mask_appends(self):
        ls = LabelSet(("A", "B")).with_mask()
        assert ls.names == ("A", "B", MASK_LABEL)
        assert ls.mask_index == 2

    def test_with_mask_idempotent(self):
        ls = LabelSet(("A",)).with_mask()
        assert ls.with_mask() is ls

    def test_original_indices_preserved(self):
        base = LabelSet(("A", "B"))
        masked = base.with_mask()
        for name in base.names:
            assert masked.index(name) == base.index(name)

    def test_mask_index_without_mask_raises(self):
        with pytest.raises(LabelError):
            LabelSet(("A",)).mask_index

    def test_has_mask(self):
        assert not LabelSet(("A",)).has_mask()
        assert LabelSet(("A",)).with_mask().has_mask()
