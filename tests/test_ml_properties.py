"""Property-based tests (hypothesis) for the ML substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml import (
    DecisionTreeRegressor,
    LinearRegression,
    Ridge,
    StandardScaler,
)
from repro.ml.preprocessing import train_test_split


def finite_matrix(rows=st.integers(5, 30), cols=st.integers(1, 5)):
    return rows.flatmap(
        lambda r: cols.flatmap(
            lambda c: arrays(
                np.float64,
                (r, c),
                elements=st.floats(-100, 100, allow_nan=False, width=32),
            )
        )
    )


class TestScalerProperties:
    @given(finite_matrix())
    @settings(max_examples=60, deadline=None)
    def test_transform_inverse_is_identity(self, X):
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6)

    @given(finite_matrix())
    @settings(max_examples=60, deadline=None)
    def test_output_always_finite(self, X):
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))


class TestTreeProperties:
    @given(
        finite_matrix(rows=st.integers(8, 40)),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_predictions_within_target_range(self, X, seed):
        """A regression tree predicts leaf means: never outside [min, max]
        of the training targets."""
        rng = np.random.default_rng(seed)
        y = rng.normal(size=X.shape[0])
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        predictions = tree.predict(X)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @given(finite_matrix(rows=st.integers(8, 40)), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_importances_are_distribution_or_zero(self, X, seed):
        rng = np.random.default_rng(seed)
        y = rng.normal(size=X.shape[0])
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        imp = tree.feature_importances_
        assert np.all(imp >= 0)
        assert imp.sum() == 0 or abs(imp.sum() - 1.0) < 1e-9


class TestLinearProperties:
    @given(
        st.integers(10, 60),
        st.integers(1, 4),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_ols_residuals_orthogonal_to_features(self, n, p, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, p))
        y = rng.normal(size=n)
        model = LinearRegression().fit(X, y)
        residual = y - model.predict(X)
        # Normal equations: X_c^T r = 0 and sum(r) = 0 with intercept.
        assert abs(residual.sum()) < 1e-6 * n
        centred = X - X.mean(axis=0)
        assert np.all(np.abs(centred.T @ residual) < 1e-5 * n)

    @given(
        st.integers(10, 50),
        st.floats(0.0, 1000.0),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_ridge_training_loss_not_worse_than_zero_model(self, n, alpha, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        y = rng.normal(size=n)
        model = Ridge(alpha=alpha).fit(X, y)
        fitted_sse = np.sum((y - model.predict(X)) ** 2)
        mean_sse = np.sum((y - y.mean()) ** 2)
        # Ridge with intercept can always fall back to the mean predictor.
        assert fitted_sse <= mean_sse + 1e-6


class TestSplitProperties:
    @given(
        st.integers(4, 200),
        st.floats(0.05, 0.95),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_is_a_partition(self, n, test_size, seed):
        X = np.arange(n)
        X_train, X_test = train_test_split(X, test_size=test_size, rng=seed)
        combined = np.sort(np.concatenate([X_train, X_test]))
        assert np.array_equal(combined, X)
        assert len(X_test) >= 1
        assert len(X_train) >= 1
