"""Unit tests for the rolling subgraph hash (Eq. 5)."""

import pytest

from repro.core.encoding import encode_subgraph
from repro.core.hashing import DEFAULT_MODULUS, RollingSubgraphHash
from repro.exceptions import EncodingError


class TestConstruction:
    def test_default_bases(self):
        h = RollingSubgraphHash(3)
        assert h.num_labels == 3
        assert h.modulus == DEFAULT_MODULUS

    def test_zero_labels_rejected(self):
        with pytest.raises(EncodingError):
            RollingSubgraphHash(0)

    def test_wrong_base_count_rejected(self):
        with pytest.raises(EncodingError):
            RollingSubgraphHash(2, bases=(3,))

    def test_duplicate_bases_rejected(self):
        with pytest.raises(EncodingError):
            RollingSubgraphHash(2, bases=(7, 7))

    def test_many_labels_get_generated_bases(self):
        h = RollingSubgraphHash(20)
        assert h.num_labels == 20


class TestWholeSequence:
    def test_hash_is_order_invariant(self):
        """Node order can't matter: the hash is a sum over nodes."""
        h = RollingSubgraphHash(2)
        code_a = encode_subgraph([0, 1, 0], [(0, 1), (1, 2)], 2)
        code_b = encode_subgraph([1, 0, 0], [(1, 0), (0, 2)], 2)
        assert h.hash_code(code_a) == h.hash_code(code_b)

    def test_different_edge_multisets_different_hashes(self):
        """Subgraphs with different edge label-pair multisets separate."""
        h = RollingSubgraphHash(2)
        mixed = encode_subgraph([0, 1, 1], [(0, 1), (0, 2)], 2)  # edges 01, 01
        homo = encode_subgraph([0, 1, 0], [(0, 1), (0, 2)], 2)  # edges 01, 00
        assert h.hash_code(mixed) != h.hash_code(homo)

    def test_same_edge_multiset_collides_by_construction(self):
        """Eq. 5 decomposes over edges: a star and a path over the same edge
        label pairs share a hash value (the documented structural loss)."""
        h = RollingSubgraphHash(2)
        star = encode_subgraph([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)], 2)
        path = encode_subgraph([0, 1, 0, 1], [(0, 1), (1, 2), (2, 3)], 2)
        assert star != path
        assert h.hash_code(star) == h.hash_code(path)

    def test_node_contribution_zero_for_isolated(self):
        h = RollingSubgraphHash(3)
        assert h.node_contribution(1, (0, 0, 0)) == 0


class TestIncremental:
    def test_edge_delta_matches_from_scratch(self):
        """Adding an edge incrementally equals rehashing the new subgraph."""
        h = RollingSubgraphHash(3)
        labels = [0, 1, 2, 1]
        edges = [(0, 1), (1, 2)]
        base = h.hash_edges(labels, edges)
        extended = edges + [(2, 3)]
        incremental = h.add_edge(base, labels[2], labels[3])
        assert incremental == h.hash_edges(labels, extended)

    def test_remove_edge_inverts_add(self):
        h = RollingSubgraphHash(2)
        value = 12345
        added = h.add_edge(value, 0, 1)
        assert h.remove_edge(added, 0, 1) == value

    def test_edge_delta_symmetric(self):
        h = RollingSubgraphHash(3)
        assert h.edge_delta(0, 2) == h.edge_delta(2, 0)

    def test_hash_edges_matches_hash_code(self):
        """Per-edge and per-node formulations agree."""
        h = RollingSubgraphHash(3)
        labels = [0, 1, 2, 2]
        edges = [(0, 1), (1, 2), (1, 3), (2, 3)]
        code = encode_subgraph(labels, edges, 3)
        assert h.hash_edges(labels, edges) == h.hash_code(code)

    def test_incremental_chain(self):
        """Build a subgraph edge by edge; hash stays consistent throughout."""
        h = RollingSubgraphHash(2)
        labels = [0, 1, 0, 1, 0]
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]
        running = 0
        for i, (u, v) in enumerate(edges, start=1):
            running = h.add_edge(running, labels[u], labels[v])
            assert running == h.hash_edges(labels, edges[:i])


class TestCollisionRate:
    def test_collisions_exactly_match_edge_multisets(self):
        """On every labelled graph with <= 4 edges, two encodings share a
        hash value iff they share the multiset of edge label pairs — the
        exact characterisation of Eq. 5's information content."""
        from collections import Counter

        from repro.core.isomorphism import enumerate_connected_labelled_graphs

        h = RollingSubgraphHash(2)
        by_hash: dict[int, set] = {}
        for graph in enumerate_connected_labelled_graphs(2, 4):
            value = h.hash_edges(graph.labels, graph.edges)
            multiset = frozenset(
                Counter(
                    tuple(sorted((graph.labels[u], graph.labels[v])))
                    for u, v in graph.edges
                ).items()
            )
            by_hash.setdefault(value, set()).add(multiset)
        for multisets in by_hash.values():
            assert len(multisets) == 1

    def test_hash_never_splits_a_code(self):
        """All members of one encoding class hash identically (the property
        the census's hash key mode relies on)."""
        from repro.core.isomorphism import enumerate_connected_labelled_graphs

        h = RollingSubgraphHash(2)
        by_code: dict[object, set[int]] = {}
        for graph in enumerate_connected_labelled_graphs(2, 4):
            code = graph.encode(2)
            by_code.setdefault(code, set()).add(h.hash_code(code))
        for hashes in by_code.values():
            assert len(hashes) == 1
