"""Unit tests for random forests."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor


def _friedmanish(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 5))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 5 * X[:, 2] + rng.normal(0, 0.2, n)
    return X, y


class TestRegressorForest:
    def test_beats_single_tree_out_of_sample(self):
        from repro.ml.tree import DecisionTreeRegressor

        X, y = _friedmanish()
        X_train, y_train = X[:200], y[:200]
        X_test, y_test = X[200:], y[200:]
        tree = DecisionTreeRegressor(random_state=0).fit(X_train, y_train)
        forest = RandomForestRegressor(n_estimators=40, random_state=0).fit(
            X_train, y_train
        )
        assert forest.score(X_test, y_test) > tree.score(X_test, y_test)

    def test_deterministic_with_seed(self):
        X, y = _friedmanish(n=100)
        a = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y)
        b = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_importances_normalised(self):
        X, y = _friedmanish(n=150)
        forest = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)
        assert np.all(forest.feature_importances_ >= 0)

    def test_importances_rank_signal_over_noise(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 6))
        y = 4.0 * X[:, 1] + 0.05 * rng.normal(size=300)
        forest = RandomForestRegressor(n_estimators=30, random_state=0).fit(X, y)
        assert np.argmax(forest.feature_importances_) == 1

    def test_no_bootstrap_mode(self):
        X, y = _friedmanish(n=100)
        forest = RandomForestRegressor(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        # Without bootstrap and with all features every tree memorises.
        assert forest.score(X, y) > 0.99

    def test_bad_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)


class TestClassifierForest:
    def _blobs(self, seed=0):
        rng = np.random.default_rng(seed)
        X = np.vstack([rng.normal(loc=c, size=(80, 3)) for c in (0, 2.5, 5)])
        y = np.repeat(["a", "b", "c"], 80)
        return X, y

    def test_separates_blobs(self):
        X, y = self._blobs()
        forest = RandomForestClassifier(n_estimators=25, random_state=0).fit(X, y)
        assert forest.score(X, y) > 0.95

    def test_predict_proba_valid_distribution(self):
        X, y = self._blobs()
        forest = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        probabilities = forest.predict_proba(X)
        assert probabilities.shape == (X.shape[0], 3)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0)

    def test_predict_consistent_with_proba(self):
        X, y = self._blobs()
        forest = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        probabilities = forest.predict_proba(X)
        predictions = forest.predict(X)
        assert np.array_equal(
            predictions, forest.classes_[np.argmax(probabilities, axis=1)]
        )

    def test_handles_bootstrap_missing_class(self):
        """Tiny class may vanish from bootstrap samples; probabilities must
        still align to the forest-level class list."""
        rng = np.random.default_rng(2)
        X = np.vstack([rng.normal(size=(50, 2)), rng.normal(loc=5, size=(2, 2))])
        y = np.array(["common"] * 50 + ["rare"] * 2)
        forest = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        probabilities = forest.predict_proba(X)
        assert probabilities.shape[1] == 2
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_y_mismatch(self):
        with pytest.raises(ValueError):
            RandomForestClassifier().fit(np.ones((5, 2)), np.zeros(4))


class TestEnginesAndParallelism:
    """The batched engine and the process fan-out are bit-exact
    reformulations of the sequential reference builder."""

    def test_fast_engine_matches_reference_regressor(self):
        X, y = _friedmanish(n=150)
        fast = RandomForestRegressor(
            n_estimators=15, max_features="sqrt", random_state=4, engine="fast"
        ).fit(X, y)
        reference = RandomForestRegressor(
            n_estimators=15, max_features="sqrt", random_state=4, engine="reference"
        ).fit(X, y)
        assert np.array_equal(fast.predict(X), reference.predict(X))
        assert np.array_equal(
            fast.feature_importances_, reference.feature_importances_
        )

    def test_fast_engine_matches_reference_classifier(self):
        X, y = _friedmanish(n=150)
        labels = (y > np.median(y)).astype(int)
        fast = RandomForestClassifier(
            n_estimators=15, random_state=4, engine="fast"
        ).fit(X, labels)
        reference = RandomForestClassifier(
            n_estimators=15, random_state=4, engine="reference"
        ).fit(X, labels)
        assert np.array_equal(fast.predict_proba(X), reference.predict_proba(X))
        assert np.array_equal(
            fast.feature_importances_, reference.feature_importances_
        )

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_regressor_n_jobs_bit_identical(self, n_jobs):
        X, y = _friedmanish(n=120)
        serial = RandomForestRegressor(n_estimators=8, random_state=7).fit(X, y)
        parallel = RandomForestRegressor(
            n_estimators=8, random_state=7, n_jobs=n_jobs
        ).fit(X, y)
        assert np.array_equal(serial.predict(X), parallel.predict(X))
        assert np.array_equal(
            serial.feature_importances_, parallel.feature_importances_
        )

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_classifier_n_jobs_bit_identical(self, n_jobs):
        X, y = _friedmanish(n=120)
        labels = (y > np.median(y)).astype(int)
        serial = RandomForestClassifier(n_estimators=8, random_state=7).fit(X, labels)
        parallel = RandomForestClassifier(
            n_estimators=8, random_state=7, n_jobs=n_jobs
        ).fit(X, labels)
        assert np.array_equal(
            serial.predict_proba(X), parallel.predict_proba(X)
        )
        assert np.array_equal(
            serial.feature_importances_, parallel.feature_importances_
        )

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(engine="warp")
        with pytest.raises(ValueError):
            RandomForestRegressor(n_jobs=-1)
